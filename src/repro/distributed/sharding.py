"""Category-space sharding for multi-node screened classification.

This module owns the *shard plan* (how the category space splits) and
the *reduce* step (how per-shard outputs merge back to global order).
Both serving backends route through the same functions —
:class:`ShardedClassifier` runs shards sequentially in-process, while
:class:`repro.distributed.parallel.ParallelShardedEngine` scatters the
batch to one process per shard — so their outputs are identical by
construction, and the differential tests in
``tests/test_distributed_parallel.py`` hold them to it bit for bit.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.candidates import CandidateSet
from repro.core.classifier import FullClassifier
from repro.core.pipeline import (
    ApproximateScreeningClassifier,
    ScreenedOutput,
    StreamedOutput,
)
from repro.core.screener import ScreeningConfig
from repro.core.training import train_screener
from repro.linalg.topk import top_k_indices
from repro.utils.rng import RngLike, spawn_rngs
from repro.utils.validation import check_batch_features, check_positive


def shard_ranges(num_categories: int, num_shards: int) -> List[range]:
    """Contiguous, balanced category ranges (sizes differ by ≤1)."""
    check_positive("num_categories", num_categories)
    check_positive("num_shards", num_shards)
    if num_shards > num_categories:
        raise ValueError(
            f"{num_shards} shards exceed {num_categories} categories"
        )
    base, remainder = divmod(num_categories, num_shards)
    ranges = []
    start = 0
    for shard in range(num_shards):
        size = base + (1 if shard < remainder else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


# ----------------------------------------------------------------------
# reduce: per-shard outputs -> global order
# ----------------------------------------------------------------------
def merge_candidates(
    candidate_sets: Sequence[CandidateSet],
    ranges: Sequence[range],
    batch_size: int,
) -> CandidateSet:
    """Merge per-shard candidate sets into global category order.

    Vectorized over the whole batch with the flat-scatter machinery:
    each shard contributes its ``(rows, cols)`` pairs (columns offset
    to global ids), a stable sort groups them by row while preserving
    shard order within a row, and one split yields the per-row lists.
    Identical to :func:`merge_candidates_per_row` (tested).
    """
    rows_parts: List[np.ndarray] = []
    cols_parts: List[np.ndarray] = []
    for candidate_set, shard_range in zip(candidate_sets, ranges):
        rows, cols = candidate_set.flat()
        rows_parts.append(rows)
        cols_parts.append(cols + shard_range.start)
    all_rows = np.concatenate(rows_parts)
    all_cols = np.concatenate(cols_parts)
    order = np.argsort(all_rows, kind="stable")
    counts = np.bincount(all_rows, minlength=batch_size).astype(np.intp)
    return CandidateSet.from_flat(counts, all_cols[order])


def merge_candidates_per_row(
    candidate_sets: Sequence[CandidateSet],
    ranges: Sequence[range],
    batch_size: int,
) -> CandidateSet:
    """Reference merge: one concatenation per batch row.

    This is the original (pre-vectorization) dataflow, kept as the
    semantic anchor for the identity test guarding
    :func:`merge_candidates`.
    """
    merged: List[np.ndarray] = []
    for row in range(batch_size):
        parts = [
            candidate_set.indices[row] + shard_range.start
            for candidate_set, shard_range in zip(candidate_sets, ranges)
        ]
        merged.append(np.concatenate(parts))
    return CandidateSet(indices=merged)


def merge_shard_outputs(
    outputs: Sequence[ScreenedOutput],
    ranges: Sequence[range],
) -> ScreenedOutput:
    """Concatenate per-shard mixed outputs back into global order.

    The logits planes concatenate along the category axis; candidate
    indices merge via :func:`merge_candidates`; and instead of
    materializing every shard's approximate plane, the per-shard
    restore records (candidate positions + their pre-mix approximate
    values) concatenate into one global record, so the merged output's
    ``approximate_logits`` stays lazy exactly like a single-node
    output's.
    """
    if not outputs:
        raise ValueError("merge_shard_outputs needs at least one shard output")
    batch_size = outputs[0].batch_size
    logits = np.concatenate([output.logits for output in outputs], axis=1)
    candidates = merge_candidates(
        [output.candidates for output in outputs], ranges, batch_size
    )
    rows_parts: List[np.ndarray] = []
    cols_parts: List[np.ndarray] = []
    saved_parts: List[np.ndarray] = []
    for output, shard_range in zip(outputs, ranges):
        rows, cols, saved = output.candidate_restore()
        rows_parts.append(rows)
        cols_parts.append(cols + shard_range.start)
        saved_parts.append(saved)
    restore = (
        np.concatenate(rows_parts),
        np.concatenate(cols_parts),
        np.concatenate(saved_parts),
    )
    return ScreenedOutput(logits=logits, candidates=candidates, restore=restore)


def merge_streamed_outputs(
    outputs: Sequence[StreamedOutput],
    ranges: Sequence[range],
) -> StreamedOutput:
    """Merge per-shard streamed (candidates-only) outputs to global order.

    The streaming analogue of :func:`merge_shard_outputs`: there are no
    logits planes to concatenate — each shard contributes its flat
    candidate record (rows, globally-offset columns, exact and
    approximate values), and one stable row sort interleaves them while
    preserving shard order within a row, exactly as the dense merge
    orders its candidate lists.
    """
    if not outputs:
        raise ValueError("merge_streamed_outputs needs at least one shard output")
    batch_size = outputs[0].batch_size
    rows_parts: List[np.ndarray] = []
    cols_parts: List[np.ndarray] = []
    exact_parts: List[np.ndarray] = []
    approx_parts: List[np.ndarray] = []
    for output, shard_range in zip(outputs, ranges):
        rows, cols = output.candidates.flat()
        rows_parts.append(rows)
        cols_parts.append(cols + shard_range.start)
        exact_parts.append(output.exact_values)
        approx_parts.append(output.approximate_values)
    all_rows = np.concatenate(rows_parts)
    order = np.argsort(all_rows, kind="stable")
    counts = np.bincount(all_rows, minlength=batch_size).astype(np.intp)
    return StreamedOutput(
        candidates=CandidateSet.from_flat(
            counts, np.concatenate(cols_parts)[order]
        ),
        exact_values=np.concatenate(exact_parts)[order],
        approximate_values=np.concatenate(approx_parts)[order],
        num_categories=sum(len(shard_range) for shard_range in ranges),
    )


def _empty_candidates(batch_size: int) -> CandidateSet:
    return CandidateSet.from_flat(
        np.zeros(batch_size, dtype=np.intp), np.empty(0, dtype=np.intp)
    )


def placeholder_screened_output(
    batch_size: int, shard_range: range, dtype
) -> ScreenedOutput:
    """A dead shard's stand-in for the dense partial merge.

    NaN logits (the honest "no answer" value — downstream argmax/top-k
    must treat these columns as unavailable), zero candidates, an empty
    restore record.  Shaped exactly like a live shard's output so the
    regular :func:`merge_shard_outputs` concatenation keeps global
    column numbering intact.
    """
    logits = np.full((batch_size, len(shard_range)), np.nan, dtype=dtype)
    empty_idx = np.empty(0, dtype=np.intp)
    return ScreenedOutput(
        logits=logits,
        candidates=_empty_candidates(batch_size),
        restore=(empty_idx, empty_idx.copy(), np.empty(0, dtype=dtype)),
    )


def placeholder_streamed_output(
    batch_size: int, shard_range: range, dtype
) -> StreamedOutput:
    """A dead shard's stand-in for the streaming partial merge: it
    simply contributes no candidates (the streamed result is sparse, so
    absence needs no NaN plane)."""
    return StreamedOutput(
        candidates=_empty_candidates(batch_size),
        exact_values=np.empty(0, dtype=dtype),
        approximate_values=np.empty(0, dtype=dtype),
        num_categories=len(shard_range),
    )


def merge_partial_shard_outputs(
    outputs: Sequence[Optional[ScreenedOutput]],
    ranges: Sequence[range],
    batch_size: int,
    dtypes: Sequence,
) -> ScreenedOutput:
    """Merge per-shard dense outputs where some shards are missing.

    ``outputs[i] is None`` marks shard ``i`` as failed; its category
    stripe merges as a NaN placeholder so surviving columns keep their
    global indices.  With no ``None`` entries this is exactly
    :func:`merge_shard_outputs`.
    """
    filled = [
        output
        if output is not None
        else placeholder_screened_output(batch_size, shard_range, dtype)
        for output, shard_range, dtype in zip(outputs, ranges, dtypes)
    ]
    return merge_shard_outputs(filled, ranges)


def merge_partial_streamed_outputs(
    outputs: Sequence[Optional[StreamedOutput]],
    ranges: Sequence[range],
    batch_size: int,
    dtypes: Sequence,
) -> StreamedOutput:
    """Streaming analogue of :func:`merge_partial_shard_outputs`."""
    filled = [
        output
        if output is not None
        else placeholder_streamed_output(batch_size, shard_range, dtype)
        for output, shard_range, dtype in zip(outputs, ranges, dtypes)
    ]
    return merge_streamed_outputs(filled, ranges)


def shard_top_k(
    output: ScreenedOutput, shard_range: range, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """One node's contribution to a global top-k: ``min(k, |shard|)``
    (global index, score) pairs per row — the scale-out wire format."""
    local_k = min(k, output.num_categories)
    local = top_k_indices(output.logits, local_k, sort=True)
    rows = np.arange(output.batch_size)[:, None]
    return local + shard_range.start, output.logits[rows, local]


def reduce_top_k(
    indices_parts: Sequence[np.ndarray],
    scores_parts: Sequence[np.ndarray],
    k: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Host-side reduce of per-shard top-k pairs to the global top-k."""
    all_indices = np.concatenate(indices_parts, axis=1)
    all_scores = np.concatenate(scores_parts, axis=1)
    order = np.argsort(-all_scores, axis=1)[:, :k]
    rows = np.arange(all_scores.shape[0])[:, None]
    return all_indices[rows, order], all_scores[rows, order]


# ----------------------------------------------------------------------
# the sequential (in-process) backend
# ----------------------------------------------------------------------
class ShardedClassifier:
    """A full classifier split across nodes, each with its own screener.

    Functionally equivalent to the single-node pipeline: per-node mixed
    outputs concatenate back into the global category order (tested).
    The difference is deployment — each node trains a screener for its
    shard only, so no node materializes global state.

    This class runs shards sequentially in one process; call
    :meth:`parallel` for the process-parallel engine over the same
    shards (same shard plan, same reduce path, bit-identical outputs).
    """

    def __init__(
        self,
        classifier: FullClassifier,
        num_shards: int,
        config: Optional[ScreeningConfig] = None,
    ):
        self.classifier = classifier
        self.ranges = shard_ranges(classifier.num_categories, num_shards)
        self.config = config or ScreeningConfig.from_scale(
            classifier.hidden_dim, scale=0.25
        )
        self.shards: List[ApproximateScreeningClassifier] = []

    @property
    def num_shards(self) -> int:
        return len(self.ranges)

    @property
    def num_categories(self) -> int:
        """Global category count (EngineBackend surface)."""
        return self.classifier.num_categories

    @property
    def hidden_dim(self) -> int:
        """Feature dimensionality (EngineBackend surface)."""
        return self.classifier.hidden_dim

    @property
    def trained(self) -> bool:
        return bool(self.shards)

    # ------------------------------------------------------------------
    def train(
        self,
        features: np.ndarray,
        candidates_per_shard: int = 16,
        solver: str = "lstsq",
        rng: RngLike = None,
    ) -> None:
        """Distill one screener per shard (independently, as separate
        nodes would)."""
        check_positive("candidates_per_shard", candidates_per_shard)
        rngs = spawn_rngs(rng, self.num_shards)
        self.shards = []
        for shard_range, shard_rng in zip(self.ranges, rngs):
            shard_classifier = FullClassifier(
                self.classifier.weight[shard_range.start : shard_range.stop],
                self.classifier.bias[shard_range.start : shard_range.stop],
                normalization=self.classifier.normalization,
            )
            screener = train_screener(
                shard_classifier, features, config=self.config,
                solver=solver, rng=shard_rng,
            )
            self.shards.append(
                ApproximateScreeningClassifier(
                    shard_classifier, screener,
                    num_candidates=candidates_per_shard,
                )
            )

    # ------------------------------------------------------------------
    def forward(self, features: np.ndarray) -> ScreenedOutput:
        """All-shard screened inference, merged to global order."""
        if not self.trained:
            raise RuntimeError("call train() before forward()")
        batch = check_batch_features(features, self.classifier.hidden_dim)
        outputs = [shard.forward(batch) for shard in self.shards]
        return merge_shard_outputs(outputs, self.ranges)

    __call__ = forward

    def forward_streaming(
        self,
        features: np.ndarray,
        block_categories: Optional[int] = None,
    ) -> StreamedOutput:
        """All-shard blocked streaming inference, merged to global order.

        Each shard is a category stripe: it streams its stripe block by
        block through its own workspace and ships back only its
        candidate record.  Candidate sets and exact values match
        :meth:`forward` bit for bit (the selection and exact kernels
        are shared with the dense path).
        """
        if not self.trained:
            raise RuntimeError("call train() before forward_streaming()")
        batch = check_batch_features(features, self.classifier.hidden_dim)
        outputs = [
            shard.forward_streaming(batch, block_categories=block_categories)
            for shard in self.shards
        ]
        return merge_streamed_outputs(outputs, self.ranges)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(features).logits, axis=-1)

    def top_k(self, features: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Global top-k via per-shard top-k + reduce (the scale-out
        communication pattern): each node ships only ``k`` (index,
        score) pairs, not its whole shard."""
        if not self.trained:
            raise RuntimeError("call train() before top_k()")
        check_positive("k", k)
        batch = check_batch_features(features, self.classifier.hidden_dim)
        shard_indices = []
        shard_scores = []
        for shard, shard_range in zip(self.shards, self.ranges):
            indices, scores = shard_top_k(shard.forward(batch), shard_range, k)
            shard_indices.append(indices)
            shard_scores.append(scores)
        return reduce_top_k(shard_indices, shard_scores, k)

    # ------------------------------------------------------------------
    # EngineBackend conformance (repro.serving.backend)
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release per-shard serving resources (workspace arenas).

        The sequential backend holds no processes or shared segments,
        so this only drops scratch memory; the model stays trained and
        usable.  Idempotent, part of the
        :class:`~repro.serving.backend.EngineBackend` contract.
        """
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedClassifier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def parallel(self, **kwargs):
        """A process-parallel serving engine over these trained shards.

        Returns a :class:`repro.distributed.parallel.ParallelShardedEngine`
        (one worker process per shard, parameters shared zero-copy).
        Use as a context manager or call ``close()`` when done.
        """
        from repro.distributed.parallel import ParallelShardedEngine

        return ParallelShardedEngine(self, **kwargs)
