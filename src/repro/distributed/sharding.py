"""Category-space sharding for multi-node screened classification.

This module owns the *shard plan* (how the category space splits) and
the *reduce* step (how per-shard outputs merge back to global order).
Both serving backends route through the same functions —
:class:`ShardedClassifier` runs shards sequentially in-process, while
:class:`repro.distributed.parallel.ParallelShardedEngine` scatters the
batch to one process per shard — so their outputs are identical by
construction, and the differential tests in
``tests/test_distributed_parallel.py`` hold them to it bit for bit.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.candidates import CandidateSet
from repro.core.classifier import FullClassifier
from repro.core.pipeline import (
    ApproximateScreeningClassifier,
    ScreenedOutput,
    StreamedOutput,
)
from repro.core.screener import ScreeningConfig
from repro.core.training import train_screener
from repro.linalg.topk import top_k_indices
from repro.utils.rng import RngLike, spawn_rngs
from repro.utils.validation import check_batch_features, check_positive


def shard_ranges(num_categories: int, num_shards: int) -> List[range]:
    """Contiguous, balanced category ranges (sizes differ by ≤1).

    Every shard is guaranteed non-empty: ``num_shards > num_categories``
    raises ``ValueError`` rather than silently emitting empty ranges,
    because an empty shard would train no screener, answer no request,
    and make the merge's "contiguous cover of [0, l)" invariant
    vacuously easy to break.  The contract is pinned end-to-end (plan
    construction, ``ShardedClassifier``) in ``tests/test_distributed.py``
    and ``tests/test_skew_sharding.py``.
    """
    check_positive("num_categories", num_categories)
    check_positive("num_shards", num_shards)
    if num_shards > num_categories:
        raise ValueError(
            f"{num_shards} shards exceed {num_categories} categories"
        )
    base, remainder = divmod(num_categories, num_shards)
    ranges = []
    start = 0
    for shard in range(num_shards):
        size = base + (1 if shard < remainder else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


# ----------------------------------------------------------------------
# shard planning: who owns which categories
# ----------------------------------------------------------------------
class ShardPlan:
    """A contiguous partition of the category space with load estimates.

    The plan is the single authority on "which shard owns which
    categories".  Its invariants are exactly what the ``merge_*``
    reducers need to keep global column indexing bit-exact:

    * ranges are contiguous, ascending, step-1 and non-empty;
    * they cover ``[0, num_categories)`` with no gap or overlap.

    ``loads`` carries the *estimated* fraction of serving work each
    shard absorbs (normalized to sum to 1).  For a uniform plan that is
    just the size fraction; a frequency-balanced plan equalizes it
    under an observed Zipfian mix.  ``source`` records how the plan was
    built (``"uniform"`` / ``"balanced"`` / ``"explicit"``) for stats
    and benchmark reports.

    Plans are immutable value objects: build with :meth:`uniform`,
    :meth:`balanced` or :meth:`from_ranges`.
    """

    __slots__ = ("ranges", "loads", "source")

    def __init__(
        self,
        ranges: Sequence[range],
        loads: Optional[Sequence[float]] = None,
        source: str = "explicit",
    ):
        ranges = tuple(ranges)
        if not ranges:
            raise ValueError("a ShardPlan needs at least one shard range")
        expected_start = 0
        for shard_id, shard_range in enumerate(ranges):
            if shard_range.step != 1:
                raise ValueError(
                    f"shard {shard_id} has step {shard_range.step}; ranges "
                    "must be step-1"
                )
            if len(shard_range) == 0:
                raise ValueError(f"shard {shard_id} is empty")
            if shard_range.start != expected_start:
                raise ValueError(
                    f"shard {shard_id} starts at {shard_range.start}, "
                    f"expected {expected_start}: ranges must tile "
                    "[0, num_categories) contiguously in ascending order"
                )
            expected_start = shard_range.stop
        if loads is None:
            total = float(expected_start)
            loads = tuple(len(shard_range) / total for shard_range in ranges)
        else:
            loads = tuple(float(load) for load in loads)
            if len(loads) != len(ranges):
                raise ValueError(
                    f"{len(loads)} loads for {len(ranges)} shards"
                )
            if any(load < 0 or not np.isfinite(load) for load in loads):
                raise ValueError("loads must be finite and non-negative")
            mass = sum(loads)
            loads = (
                tuple(load / mass for load in loads)
                if mass > 0
                else tuple(1.0 / len(ranges) for _ in ranges)
            )
        object.__setattr__(self, "ranges", ranges)
        object.__setattr__(self, "loads", loads)
        object.__setattr__(self, "source", str(source))

    def __setattr__(self, name, value):
        raise AttributeError("ShardPlan is immutable")

    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, num_categories: int, num_shards: int) -> "ShardPlan":
        """The classic size-balanced plan (wraps :func:`shard_ranges`)."""
        return cls(shard_ranges(num_categories, num_shards), source="uniform")

    @classmethod
    def balanced(
        cls,
        frequencies: Optional[Sequence[float]],
        num_shards: int,
        *,
        num_categories: Optional[int] = None,
        screening_weight: float = 0.0,
    ) -> "ShardPlan":
        """Frequency-balanced plan: equalize estimated per-shard load.

        ``frequencies[c]`` is category ``c``'s observed (or supplied)
        serving weight — e.g. how often it lands in a candidate set
        under the production mix (:func:`observed_category_frequencies`).
        The partition minimizes the maximum per-shard load over all
        contiguous partitions (minimax, via binary search + greedy),
        with per-category cost

            ``cost_c = screening_weight + frequencies_c / mean(frequencies)``

        ``screening_weight`` models the per-category work every request
        pays regardless of popularity (the screening GEMM touches every
        column): ``0`` balances pure exact-phase frequency mass, large
        values push the plan back toward uniform.  It is expressed in
        units of the mean per-category frequency cost, so ``1.0`` means
        "screening a category costs as much as serving a category of
        average popularity".

        Fallback: ``frequencies`` that are ``None``, empty or all-zero
        carry no signal, so the plan degrades to :meth:`uniform`
        (``num_categories`` is then required).
        """
        check_positive("num_shards", num_shards)
        if screening_weight < 0:
            raise ValueError(
                f"screening_weight must be >= 0, got {screening_weight}"
            )
        if frequencies is not None:
            frequencies = np.asarray(frequencies, dtype=np.float64)
            if frequencies.ndim != 1:
                raise ValueError(
                    f"frequencies must be 1-D, got shape {frequencies.shape}"
                )
            if num_categories is not None and frequencies.size not in (
                0,
                num_categories,
            ):
                raise ValueError(
                    f"{frequencies.size} frequencies for "
                    f"{num_categories} categories"
                )
        if frequencies is None or frequencies.size == 0:
            if num_categories is None:
                raise ValueError(
                    "empty frequencies need num_categories for the "
                    "uniform fallback"
                )
            return cls.uniform(num_categories, num_shards)
        if not np.all(np.isfinite(frequencies)) or np.any(frequencies < 0):
            raise ValueError("frequencies must be finite and non-negative")
        mean = float(frequencies.mean())
        if mean <= 0:
            return cls.uniform(frequencies.size, num_shards)
        costs = screening_weight + frequencies / mean
        ranges = _minimax_contiguous_partition(costs, num_shards)
        loads = [float(costs[r.start : r.stop].sum()) for r in ranges]
        return cls(ranges, loads=loads, source="balanced")

    @classmethod
    def from_ranges(
        cls, ranges: Sequence[range], loads: Optional[Sequence[float]] = None
    ) -> "ShardPlan":
        """An explicit hand-built plan (validated like any other)."""
        return cls(ranges, loads=loads, source="explicit")

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.ranges)

    @property
    def num_categories(self) -> int:
        return self.ranges[-1].stop

    @property
    def imbalance(self) -> float:
        """Max-over-mean estimated shard load; ``1.0`` is perfect."""
        return max(self.loads) * self.num_shards

    def suggest_replicas(
        self, extra_workers: int, max_per_shard: Optional[int] = None
    ) -> dict:
        """Spread ``extra_workers`` replica processes over the hot shards.

        Greedy: each extra worker goes to the shard with the highest
        *effective* load (estimated load divided by its current replica
        count), optionally capped at ``max_per_shard`` replicas per
        shard.  Returns ``{shard_id: replica_count}`` with every shard
        present (count ≥ 1) — the shape
        :class:`~repro.distributed.parallel.ParallelShardedEngine`'s
        ``replicas`` parameter accepts directly.
        """
        counts = suggest_replicas_for_loads(
            self.loads, extra_workers, max_per_shard=max_per_shard
        )
        return dict(enumerate(counts))

    # ------------------------------------------------------------------
    # live-load drift (the elastic-scaling re-plan signal)
    # ------------------------------------------------------------------
    def shard_loads(self, frequencies: Sequence[float]) -> Tuple[float, ...]:
        """Aggregate per-category frequencies to per-shard load fractions.

        ``frequencies`` is the observed per-category serving weight
        (:func:`observed_category_frequencies`); the return value is the
        fraction of that mass landing in each shard's range, normalized
        to sum to 1 (uniform when the mass is zero).  This is the
        observed counterpart of ``self.loads``.
        """
        frequencies = np.asarray(frequencies, dtype=np.float64)
        if frequencies.shape != (self.num_categories,):
            raise ValueError(
                f"{frequencies.size} frequencies for "
                f"{self.num_categories} categories"
            )
        sums = [
            float(frequencies[r.start : r.stop].sum()) for r in self.ranges
        ]
        return normalize_loads(sums)

    def drift(self, observed_loads: Sequence[float]) -> float:
        """How far observed per-shard load drifted from this plan's
        estimates (see :func:`load_drift`)."""
        return load_drift(self.loads, observed_loads)

    def with_loads(
        self, loads: Sequence[float], source: str = "observed"
    ) -> "ShardPlan":
        """The same partition re-weighted with fresh load estimates —
        the re-plan step of elastic serving: shard boundaries (and the
        shared parameter segments behind them) stay fixed, only the
        load vector that sizes replica placement is replaced."""
        return ShardPlan(self.ranges, loads=loads, source=source)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ShardPlan)
            and self.ranges == other.ranges
            and self.loads == other.loads
        )

    def __hash__(self) -> int:
        return hash((self.ranges, self.loads))

    def __repr__(self) -> str:
        sizes = ", ".join(str(len(r)) for r in self.ranges)
        return (
            f"ShardPlan({self.source}, l={self.num_categories}, "
            f"sizes=[{sizes}], imbalance={self.imbalance:.2f})"
        )


def _minimax_contiguous_partition(
    costs: np.ndarray, num_shards: int
) -> List[range]:
    """Split ``costs`` into ``num_shards`` contiguous non-empty runs
    minimizing the maximum run sum (the "split array largest sum"
    problem, binary search on the cap + greedy packing).

    The greedy reserves one category per remaining shard so every shard
    is non-empty even when one category dominates the mass.
    """
    n = costs.size
    if num_shards > n:
        raise ValueError(f"{num_shards} shards exceed {n} categories")
    prefix = np.concatenate(([0.0], np.cumsum(costs)))
    total = float(prefix[-1])

    def pack(cap: float) -> Optional[List[range]]:
        ranges: List[range] = []
        start = 0
        for shard in range(num_shards):
            if shard == num_shards - 1:
                end = n
            else:
                # Largest end with sum(start:end) <= cap ...
                end = int(
                    np.searchsorted(prefix, prefix[start] + cap, side="right")
                ) - 1
                # ... but leave one category for each remaining shard,
                # and take at least one ourselves.
                end = min(end, n - (num_shards - shard - 1))
                end = max(end, start + 1)
            if float(prefix[end] - prefix[start]) > cap * (1 + 1e-12):
                return None
            ranges.append(range(start, end))
            start = end
        return ranges

    lo = max(float(costs.max(initial=0.0)), total / num_shards)
    hi = total
    if pack(lo) is not None:
        hi = lo
    else:
        for _ in range(64):
            mid = 0.5 * (lo + hi)
            if pack(mid) is not None:
                hi = mid
            else:
                lo = mid
    ranges = pack(hi)
    assert ranges is not None  # hi = total is always feasible
    return ranges


def normalize_loads(loads: Sequence[float]) -> Tuple[float, ...]:
    """Non-negative load weights → fractions summing to 1.

    Zero total mass (an empty observation window) degrades to uniform —
    the honest "no signal" answer for every consumer (drift ≈ 0 against
    a uniform reference, replica suggestions spread evenly).
    """
    loads = [float(load) for load in loads]
    if not loads:
        raise ValueError("normalize_loads needs at least one load")
    if any(load < 0 or not np.isfinite(load) for load in loads):
        raise ValueError(f"loads must be finite and non-negative: {loads}")
    mass = sum(loads)
    if mass <= 0:
        return tuple(1.0 / len(loads) for _ in loads)
    return tuple(load / mass for load in loads)


def load_drift(
    reference_loads: Sequence[float], observed_loads: Sequence[float]
) -> float:
    """Relative L∞ distance between two per-shard load distributions.

    Both vectors are normalized to fractions first; the metric is

        ``max_i |observed_i - reference_i| / max(reference_i, 1/n)``

    — the worst per-shard deviation, expressed relative to what the
    reference expected of that shard (floored at the uniform share so a
    near-zero reference load cannot blow the ratio up).  ``0`` means
    the live mix matches the plan that sized the fleet; ``1`` means
    some shard's observed share is off by its full expected share.
    This is the re-plan trigger for elastic replica scaling
    (:mod:`repro.distributed.autoscale`).
    """
    reference = normalize_loads(reference_loads)
    observed = normalize_loads(observed_loads)
    if len(reference) != len(observed):
        raise ValueError(
            f"{len(observed)} observed loads for {len(reference)} reference loads"
        )
    floor = 1.0 / len(reference)
    return max(
        abs(obs - ref) / max(ref, floor)
        for ref, obs in zip(reference, observed)
    )


def suggest_replicas_for_loads(
    loads: Sequence[float],
    extra_workers: int,
    max_per_shard: Optional[int] = None,
) -> List[int]:
    """Greedy replica placement over raw per-shard loads.

    The allocation rule behind :meth:`ShardPlan.suggest_replicas`,
    usable without a plan (the autoscaler re-plans from *observed*
    loads): every shard starts at one replica, then each of
    ``extra_workers`` goes to the shard with the highest effective load
    ``loads[i] / counts[i]``, skipping shards at ``max_per_shard``.
    Returns the per-shard counts as a list.
    """
    if extra_workers < 0:
        raise ValueError(f"extra_workers must be >= 0, got {extra_workers}")
    if max_per_shard is not None and max_per_shard < 1:
        raise ValueError(f"max_per_shard must be >= 1, got {max_per_shard}")
    loads = normalize_loads(loads)
    counts = [1] * len(loads)
    for _ in range(extra_workers):
        eligible = [
            sid
            for sid in range(len(loads))
            if max_per_shard is None or counts[sid] < max_per_shard
        ]
        if not eligible:
            break
        hottest = max(
            eligible, key=lambda sid: (loads[sid] / counts[sid], -sid)
        )
        counts[hottest] += 1
    return counts


def observed_category_frequencies(
    outputs: Sequence,
    num_categories: int,
    weights: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Estimate per-category serving frequency from observed outputs.

    Each output (a :class:`~repro.core.pipeline.ScreenedOutput`,
    :class:`~repro.core.pipeline.StreamedOutput` or a
    :class:`~repro.core.pipeline.DegradedOutput` wrapping either)
    contributes one occurrence count per candidate hit — the candidates
    are where the exact phase spends its work, so their histogram *is*
    the load signal :meth:`ShardPlan.balanced` wants.  ``weights``
    optionally scales each output's contribution (e.g. by how often its
    query occurs in the production mix).
    """
    check_positive("num_categories", num_categories)
    counts = np.zeros(num_categories, dtype=np.float64)
    if weights is None:
        weights = [1.0] * len(outputs)
    if len(weights) != len(outputs):
        raise ValueError(f"{len(weights)} weights for {len(outputs)} outputs")
    for output, weight in zip(outputs, weights):
        result = getattr(output, "result", output)
        _, cols = result.candidates.flat()
        if cols.size:
            counts += weight * np.bincount(cols, minlength=num_categories)
    return counts


# ----------------------------------------------------------------------
# reduce: per-shard outputs -> global order
# ----------------------------------------------------------------------
def merge_candidates(
    candidate_sets: Sequence[CandidateSet],
    ranges: Sequence[range],
    batch_size: int,
) -> CandidateSet:
    """Merge per-shard candidate sets into global category order.

    Vectorized over the whole batch with the flat-scatter machinery:
    each shard contributes its ``(rows, cols)`` pairs (columns offset
    to global ids), a stable sort groups them by row while preserving
    shard order within a row, and one split yields the per-row lists.
    Identical to :func:`merge_candidates_per_row` (tested).
    """
    rows_parts: List[np.ndarray] = []
    cols_parts: List[np.ndarray] = []
    for candidate_set, shard_range in zip(candidate_sets, ranges):
        rows, cols = candidate_set.flat()
        rows_parts.append(rows)
        cols_parts.append(cols + shard_range.start)
    all_rows = np.concatenate(rows_parts)
    all_cols = np.concatenate(cols_parts)
    order = np.argsort(all_rows, kind="stable")
    counts = np.bincount(all_rows, minlength=batch_size).astype(np.intp)
    return CandidateSet.from_flat(counts, all_cols[order])


def merge_candidates_per_row(
    candidate_sets: Sequence[CandidateSet],
    ranges: Sequence[range],
    batch_size: int,
) -> CandidateSet:
    """Reference merge: one concatenation per batch row.

    This is the original (pre-vectorization) dataflow, kept as the
    semantic anchor for the identity test guarding
    :func:`merge_candidates`.
    """
    merged: List[np.ndarray] = []
    for row in range(batch_size):
        parts = [
            candidate_set.indices[row] + shard_range.start
            for candidate_set, shard_range in zip(candidate_sets, ranges)
        ]
        merged.append(np.concatenate(parts))
    return CandidateSet(indices=merged)


def merge_shard_outputs(
    outputs: Sequence[ScreenedOutput],
    ranges: Sequence[range],
) -> ScreenedOutput:
    """Concatenate per-shard mixed outputs back into global order.

    The logits planes concatenate along the category axis; candidate
    indices merge via :func:`merge_candidates`; and instead of
    materializing every shard's approximate plane, the per-shard
    restore records (candidate positions + their pre-mix approximate
    values) concatenate into one global record, so the merged output's
    ``approximate_logits`` stays lazy exactly like a single-node
    output's.
    """
    if not outputs:
        raise ValueError("merge_shard_outputs needs at least one shard output")
    batch_size = outputs[0].batch_size
    logits = np.concatenate([output.logits for output in outputs], axis=1)
    candidates = merge_candidates(
        [output.candidates for output in outputs], ranges, batch_size
    )
    rows_parts: List[np.ndarray] = []
    cols_parts: List[np.ndarray] = []
    saved_parts: List[np.ndarray] = []
    for output, shard_range in zip(outputs, ranges):
        rows, cols, saved = output.candidate_restore()
        rows_parts.append(rows)
        cols_parts.append(cols + shard_range.start)
        saved_parts.append(saved)
    restore = (
        np.concatenate(rows_parts),
        np.concatenate(cols_parts),
        np.concatenate(saved_parts),
    )
    return ScreenedOutput(logits=logits, candidates=candidates, restore=restore)


def merge_streamed_outputs(
    outputs: Sequence[StreamedOutput],
    ranges: Sequence[range],
) -> StreamedOutput:
    """Merge per-shard streamed (candidates-only) outputs to global order.

    The streaming analogue of :func:`merge_shard_outputs`: there are no
    logits planes to concatenate — each shard contributes its flat
    candidate record (rows, globally-offset columns, exact and
    approximate values), and one stable row sort interleaves them while
    preserving shard order within a row, exactly as the dense merge
    orders its candidate lists.
    """
    if not outputs:
        raise ValueError("merge_streamed_outputs needs at least one shard output")
    batch_size = outputs[0].batch_size
    rows_parts: List[np.ndarray] = []
    cols_parts: List[np.ndarray] = []
    exact_parts: List[np.ndarray] = []
    approx_parts: List[np.ndarray] = []
    for output, shard_range in zip(outputs, ranges):
        rows, cols = output.candidates.flat()
        rows_parts.append(rows)
        cols_parts.append(cols + shard_range.start)
        exact_parts.append(output.exact_values)
        approx_parts.append(output.approximate_values)
    all_rows = np.concatenate(rows_parts)
    order = np.argsort(all_rows, kind="stable")
    counts = np.bincount(all_rows, minlength=batch_size).astype(np.intp)
    return StreamedOutput(
        candidates=CandidateSet.from_flat(
            counts, np.concatenate(cols_parts)[order]
        ),
        exact_values=np.concatenate(exact_parts)[order],
        approximate_values=np.concatenate(approx_parts)[order],
        num_categories=sum(len(shard_range) for shard_range in ranges),
    )


def _empty_candidates(batch_size: int) -> CandidateSet:
    return CandidateSet.from_flat(
        np.zeros(batch_size, dtype=np.intp), np.empty(0, dtype=np.intp)
    )


def placeholder_screened_output(
    batch_size: int, shard_range: range, dtype
) -> ScreenedOutput:
    """A dead shard's stand-in for the dense partial merge.

    NaN logits (the honest "no answer" value — downstream argmax/top-k
    must treat these columns as unavailable), zero candidates, an empty
    restore record.  Shaped exactly like a live shard's output so the
    regular :func:`merge_shard_outputs` concatenation keeps global
    column numbering intact.
    """
    logits = np.full((batch_size, len(shard_range)), np.nan, dtype=dtype)
    empty_idx = np.empty(0, dtype=np.intp)
    return ScreenedOutput(
        logits=logits,
        candidates=_empty_candidates(batch_size),
        restore=(empty_idx, empty_idx.copy(), np.empty(0, dtype=dtype)),
    )


def placeholder_streamed_output(
    batch_size: int, shard_range: range, dtype
) -> StreamedOutput:
    """A dead shard's stand-in for the streaming partial merge: it
    simply contributes no candidates (the streamed result is sparse, so
    absence needs no NaN plane)."""
    return StreamedOutput(
        candidates=_empty_candidates(batch_size),
        exact_values=np.empty(0, dtype=dtype),
        approximate_values=np.empty(0, dtype=dtype),
        num_categories=len(shard_range),
    )


def merge_partial_shard_outputs(
    outputs: Sequence[Optional[ScreenedOutput]],
    ranges: Sequence[range],
    batch_size: int,
    dtypes: Sequence,
) -> ScreenedOutput:
    """Merge per-shard dense outputs where some shards are missing.

    ``outputs[i] is None`` marks shard ``i`` as failed; its category
    stripe merges as a NaN placeholder so surviving columns keep their
    global indices.  With no ``None`` entries this is exactly
    :func:`merge_shard_outputs`.
    """
    filled = [
        output
        if output is not None
        else placeholder_screened_output(batch_size, shard_range, dtype)
        for output, shard_range, dtype in zip(outputs, ranges, dtypes)
    ]
    return merge_shard_outputs(filled, ranges)


def merge_partial_streamed_outputs(
    outputs: Sequence[Optional[StreamedOutput]],
    ranges: Sequence[range],
    batch_size: int,
    dtypes: Sequence,
) -> StreamedOutput:
    """Streaming analogue of :func:`merge_partial_shard_outputs`."""
    filled = [
        output
        if output is not None
        else placeholder_streamed_output(batch_size, shard_range, dtype)
        for output, shard_range, dtype in zip(outputs, ranges, dtypes)
    ]
    return merge_streamed_outputs(filled, ranges)


def shard_top_k(
    output: ScreenedOutput, shard_range: range, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """One node's contribution to a global top-k: ``min(k, |shard|)``
    (global index, score) pairs per row — the scale-out wire format."""
    local_k = min(k, output.num_categories)
    local = top_k_indices(output.logits, local_k, sort=True)
    rows = np.arange(output.batch_size)[:, None]
    return local + shard_range.start, output.logits[rows, local]


def reduce_top_k(
    indices_parts: Sequence[np.ndarray],
    scores_parts: Sequence[np.ndarray],
    k: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Host-side reduce of per-shard top-k pairs to the global top-k."""
    all_indices = np.concatenate(indices_parts, axis=1)
    all_scores = np.concatenate(scores_parts, axis=1)
    order = np.argsort(-all_scores, axis=1)[:, :k]
    rows = np.arange(all_scores.shape[0])[:, None]
    return all_indices[rows, order], all_scores[rows, order]


# ----------------------------------------------------------------------
# the sequential (in-process) backend
# ----------------------------------------------------------------------
class ShardedClassifier:
    """A full classifier split across nodes, each with its own screener.

    Functionally equivalent to the single-node pipeline: per-node mixed
    outputs concatenate back into the global category order (tested).
    The difference is deployment — each node trains a screener for its
    shard only, so no node materializes global state.

    This class runs shards sequentially in one process; call
    :meth:`parallel` for the process-parallel engine over the same
    shards (same shard plan, same reduce path, bit-identical outputs).

    The shard plan comes from exactly one of three places, checked in
    this order: an explicit ``plan`` (any valid :class:`ShardPlan`),
    observed ``frequencies`` (builds a :meth:`ShardPlan.balanced` plan
    over ``num_shards``), or plain ``num_shards`` (the classic uniform
    split).  Non-uniform plans flow through the same merge/reduce path,
    so global column indexing stays bit-exact regardless of where the
    shard boundaries fall (``tests/test_skew_sharding.py``).
    """

    def __init__(
        self,
        classifier: FullClassifier,
        num_shards: Optional[int] = None,
        config: Optional[ScreeningConfig] = None,
        plan: Optional[ShardPlan] = None,
        frequencies: Optional[Sequence[float]] = None,
    ):
        self.classifier = classifier
        if plan is not None:
            if frequencies is not None:
                raise ValueError("pass plan or frequencies, not both")
            if num_shards is not None and num_shards != plan.num_shards:
                raise ValueError(
                    f"num_shards={num_shards} conflicts with a "
                    f"{plan.num_shards}-shard plan"
                )
            if plan.num_categories != classifier.num_categories:
                raise ValueError(
                    f"plan covers {plan.num_categories} categories, "
                    f"classifier has {classifier.num_categories}"
                )
            self.plan = plan
        elif frequencies is not None:
            if num_shards is None:
                raise ValueError("frequencies require num_shards")
            self.plan = ShardPlan.balanced(
                frequencies,
                num_shards,
                num_categories=classifier.num_categories,
            )
        else:
            if num_shards is None:
                raise ValueError("pass num_shards, frequencies or plan")
            self.plan = ShardPlan.uniform(
                classifier.num_categories, num_shards
            )
        self.ranges = list(self.plan.ranges)
        self.config = config or ScreeningConfig.from_scale(
            classifier.hidden_dim, scale=0.25
        )
        self.shards: List[ApproximateScreeningClassifier] = []

    @property
    def num_shards(self) -> int:
        return len(self.ranges)

    @property
    def num_categories(self) -> int:
        """Global category count (EngineBackend surface)."""
        return self.classifier.num_categories

    @property
    def hidden_dim(self) -> int:
        """Feature dimensionality (EngineBackend surface)."""
        return self.classifier.hidden_dim

    @property
    def trained(self) -> bool:
        return bool(self.shards)

    # ------------------------------------------------------------------
    def train(
        self,
        features: np.ndarray,
        candidates_per_shard: int = 16,
        solver: str = "lstsq",
        rng: RngLike = None,
    ) -> None:
        """Distill one screener per shard (independently, as separate
        nodes would)."""
        check_positive("candidates_per_shard", candidates_per_shard)
        rngs = spawn_rngs(rng, self.num_shards)
        self.shards = []
        for shard_range, shard_rng in zip(self.ranges, rngs):
            shard_classifier = FullClassifier(
                self.classifier.weight[shard_range.start : shard_range.stop],
                self.classifier.bias[shard_range.start : shard_range.stop],
                normalization=self.classifier.normalization,
            )
            screener = train_screener(
                shard_classifier, features, config=self.config,
                solver=solver, rng=shard_rng,
            )
            self.shards.append(
                ApproximateScreeningClassifier(
                    shard_classifier, screener,
                    num_candidates=candidates_per_shard,
                )
            )

    def quantize_exact_weights(self, kind: str = "int8") -> "ShardedClassifier":
        """Convert every shard's exact weights to a block-quantized store.

        Each trained shard pipeline swaps its FP64 weight slice for a
        :class:`~repro.core.weightstore.QuantizedExactStore` (INT8 codes
        + per-tile scales, or FP16), so :meth:`parallel` subsequently
        ships ~4-8x smaller shared parameter segments and worker
        respawn re-attaches the same quantized bytes.  The global
        reference ``self.classifier`` keeps its FP64 weights (it is the
        training-side source of truth); only the serving shards
        quantize.  Returns ``self`` for chaining.
        """
        if not self.trained:
            raise RuntimeError("call train() before quantize_exact_weights()")
        for shard in self.shards:
            shard.quantize_exact_weights(kind=kind)
        return self

    # ------------------------------------------------------------------
    def forward(self, features: np.ndarray) -> ScreenedOutput:
        """All-shard screened inference, merged to global order."""
        if not self.trained:
            raise RuntimeError("call train() before forward()")
        batch = check_batch_features(features, self.classifier.hidden_dim)
        outputs = [shard.forward(batch) for shard in self.shards]
        return merge_shard_outputs(outputs, self.ranges)

    __call__ = forward

    def forward_streaming(
        self,
        features: np.ndarray,
        block_categories: Optional[int] = None,
    ) -> StreamedOutput:
        """All-shard blocked streaming inference, merged to global order.

        Each shard is a category stripe: it streams its stripe block by
        block through its own workspace and ships back only its
        candidate record.  Candidate sets and exact values match
        :meth:`forward` bit for bit (the selection and exact kernels
        are shared with the dense path).
        """
        if not self.trained:
            raise RuntimeError("call train() before forward_streaming()")
        batch = check_batch_features(features, self.classifier.hidden_dim)
        outputs = [
            shard.forward_streaming(batch, block_categories=block_categories)
            for shard in self.shards
        ]
        return merge_streamed_outputs(outputs, self.ranges)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(features).logits, axis=-1)

    def top_k(self, features: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Global top-k via per-shard top-k + reduce (the scale-out
        communication pattern): each node ships only ``k`` (index,
        score) pairs, not its whole shard."""
        if not self.trained:
            raise RuntimeError("call train() before top_k()")
        check_positive("k", k)
        batch = check_batch_features(features, self.classifier.hidden_dim)
        shard_indices = []
        shard_scores = []
        for shard, shard_range in zip(self.shards, self.ranges):
            indices, scores = shard_top_k(shard.forward(batch), shard_range, k)
            shard_indices.append(indices)
            shard_scores.append(scores)
        return reduce_top_k(shard_indices, shard_scores, k)

    # ------------------------------------------------------------------
    # EngineBackend conformance (repro.serving.backend)
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release per-shard serving resources (workspace arenas).

        The sequential backend holds no processes or shared segments,
        so this only drops scratch memory; the model stays trained and
        usable.  Idempotent, part of the
        :class:`~repro.serving.backend.EngineBackend` contract.
        """
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedClassifier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def parallel(self, **kwargs):
        """A process-parallel serving engine over these trained shards.

        Returns a :class:`repro.distributed.parallel.ParallelShardedEngine`
        (one worker process per shard, parameters shared zero-copy).
        Use as a context manager or call ``close()`` when done.
        """
        from repro.distributed.parallel import ParallelShardedEngine

        return ParallelShardedEngine(self, **kwargs)
