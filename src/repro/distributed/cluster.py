"""Performance model of scale-out screened classification.

Each node is an ENMC-equipped server holding one category shard; after
local screening + candidates-only classification, nodes all-gather
their per-shard top-k (index, score) pairs to a reducer.  The model
composes per-node :class:`~repro.enmc.simulator.ENMCSimulator` results
with a simple α-β network cost, exposing the scale-out crossover: more
nodes shrink per-node classification time but grow the reduce cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.data.registry import Workload
from repro.enmc.config import ENMCConfig, DEFAULT_CONFIG
from repro.enmc.simulator import ENMCSimulator
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class NetworkModel:
    """α-β model: latency + bytes/bandwidth per message."""

    latency_s: float = 5e-6  # RDMA-class fabric
    bandwidth: float = 12.5e9  # 100 Gb/s

    def transfer_seconds(self, num_bytes: float) -> float:
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        return self.latency_s + num_bytes / self.bandwidth


@dataclass(frozen=True)
class DistributedResult:
    """Timing of one batched inference across the cluster."""

    nodes: int
    node_seconds: float
    reduce_seconds: float

    @property
    def seconds(self) -> float:
        return self.node_seconds + self.reduce_seconds

    @property
    def reduce_fraction(self) -> float:
        if self.seconds == 0:
            return 0.0
        return self.reduce_seconds / self.seconds


class ClusterModel:
    """Scale-out model over ENMC nodes."""

    def __init__(
        self,
        node_config: ENMCConfig = DEFAULT_CONFIG,
        network: NetworkModel = NetworkModel(),
    ):
        self.node_config = node_config
        self.network = network

    def simulate(
        self,
        workload: Workload,
        nodes: int,
        candidates_per_row: int = 0,
        batch_size: int = 1,
        top_k: int = 10,
    ) -> DistributedResult:
        """One batched inference over ``nodes`` shards.

        Per node: the shard behaves like a workload with ``l/nodes``
        categories.  Reduce: every node ships ``top_k`` (int32, fp32)
        pairs per batch row to the reducer, which merges them (cheap,
        charged at one network transfer).
        """
        check_positive("nodes", nodes)
        check_positive("top_k", top_k)
        m = candidates_per_row or workload.default_candidates
        shard_categories = max(1, math.ceil(workload.num_categories / nodes))
        shard_workload = replace(
            workload,
            abbr=f"{workload.abbr}/shard{nodes}",
            num_categories=shard_categories,
        )
        simulator = ENMCSimulator(self.node_config)
        node_result = simulator.simulate(
            shard_workload,
            candidates_per_row=max(1, math.ceil(m / nodes)),
            batch_size=batch_size,
        )
        reduce_bytes = nodes * batch_size * top_k * 8  # (int32, fp32)
        reduce_seconds = self.network.transfer_seconds(reduce_bytes)
        return DistributedResult(
            nodes=nodes,
            node_seconds=node_result.seconds,
            reduce_seconds=reduce_seconds,
        )

    def sweep(self, workload: Workload, node_counts, **kwargs):
        """Scaling curve across node counts."""
        return [self.simulate(workload, n, **kwargs) for n in node_counts]
