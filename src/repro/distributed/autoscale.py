"""Elastic replica scaling policy for the parallel serving fleet.

:class:`~repro.distributed.parallel.ParallelShardedEngine` sizes its
replica groups once, at start, from a
:class:`~repro.distributed.sharding.ShardPlan` built over *observed*
traffic — but the served mix is non-stationary by design: the front
door's result cache absorbs the hot head, campaigns move the head
around, and the engine ends up provisioned for a histogram it no longer
sees.  :class:`AutoScaler` closes that loop.  It is a pure policy
object: the engine feeds it one :class:`ShardSignal` per shard for the
window since the last evaluation (answered counts, observed exact-phase
work, mean collect latency — all signals the engine already gathers for
``stats()``), and it returns a :class:`ScaleDecision` naming replicas
to spawn or retire.  The engine applies the decision *between*
requests against the existing shared parameter segments — no restart,
no new segments, and therefore no output change: scaling moves
placement only (differentially tested in ``tests/test_autoscale.py``).

Two triggers, evaluated in order:

* **re-plan on drift** — when the observed per-shard work distribution
  drifts past ``drift_threshold`` from the loads that last sized the
  fleet (:func:`~repro.distributed.sharding.load_drift`), the whole
  replica allocation is recomputed from the observed loads with the
  same greedy rule as
  :meth:`~repro.distributed.sharding.ShardPlan.suggest_replicas`, and
  the decision reconciles current counts to the new target.  A re-plan
  re-baselines the sizing loads, so drift is always measured against
  the allocation actually in force.
* **latency overload / idle** — between re-plans, a shard whose mean
  collect latency over the window exceeds ``overload_latency_ratio``
  times the fleet mean gains one replica (budget permitting), and a
  multi-replica shard below ``idle_latency_ratio`` times the fleet
  mean loses one.

Both triggers respect the worker budget (``max_total_workers``) and the
per-shard cap (``max_replicas``), and neither ever drops a shard below
one replica.  The evaluation itself only fires once ``interval_requests``
requests have accumulated in the window, so an idle fleet is never
churned on noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import math

from repro.distributed.sharding import (
    load_drift,
    normalize_loads,
    suggest_replicas_for_loads,
)

__all__ = ["AutoScaler", "ScaleDecision", "ShardSignal"]


@dataclass(frozen=True)
class ShardSignal:
    """One shard's observation window, as the engine reports it.

    ``observed_work`` is the shard's exact-phase work over the window
    (candidate hits served — the same signal
    :func:`~repro.distributed.sharding.observed_category_frequencies`
    aggregates); ``mean_latency_s`` is the mean host-side collect
    latency (NaN when the window is empty); ``replicas`` counts *live*
    replicas; ``dead`` marks a shard whose restart budget is exhausted
    (never scaled — there is nothing left to place work on).
    """

    shard_id: int
    replicas: int
    observed_work: float
    answered: int
    mean_latency_s: float = float("nan")
    dead: bool = False


@dataclass(frozen=True)
class ScaleDecision:
    """What the policy wants changed, as per-shard spawn/retire lists.

    ``scale_up``/``scale_down`` name shard ids, one entry per replica
    to add or retire (a shard may appear more than once).  ``replan``
    marks a drift-triggered full reconciliation; ``sizing_loads`` then
    carries the observed load fractions the new allocation was sized
    from (the engine re-baselines its drift reference with them).
    """

    scale_up: Tuple[int, ...] = ()
    scale_down: Tuple[int, ...] = ()
    replan: bool = False
    drift: float = 0.0
    reason: str = "no-op"
    sizing_loads: Optional[Tuple[float, ...]] = None

    @property
    def empty(self) -> bool:
        return not self.scale_up and not self.scale_down and not self.replan


class AutoScaler:
    """The elastic scaling policy (see module docstring).

    Parameters
    ----------
    interval_requests:
        Minimum requests in the observation window before a decision is
        made; below it :meth:`evaluate` returns ``None`` (window keeps
        accumulating).
    drift_threshold:
        :func:`~repro.distributed.sharding.load_drift` value past which
        the replica allocation is recomputed from observed loads.
    max_total_workers:
        Budget on the fleet-wide replica count (live replicas summed
        over shards).  ``None`` freezes the budget at whatever total
        the first evaluation sees — scaling then only *moves* replicas.
    max_replicas:
        Per-shard replica cap.
    overload_latency_ratio / idle_latency_ratio:
        A shard hotter than ``overload × fleet mean latency`` gains one
        replica; a multi-replica shard colder than ``idle × mean``
        loses one.  Latency scaling is skipped when fewer than two
        shards report latency (no meaningful fleet mean).
    """

    def __init__(
        self,
        *,
        interval_requests: int = 32,
        drift_threshold: float = 0.5,
        max_total_workers: Optional[int] = None,
        max_replicas: int = 4,
        overload_latency_ratio: float = 2.0,
        idle_latency_ratio: float = 0.25,
    ):
        if interval_requests < 1:
            raise ValueError(
                f"interval_requests must be >= 1, got {interval_requests}"
            )
        if drift_threshold < 0:
            raise ValueError(
                f"drift_threshold must be >= 0, got {drift_threshold}"
            )
        if max_total_workers is not None and max_total_workers < 1:
            raise ValueError(
                f"max_total_workers must be >= 1, got {max_total_workers}"
            )
        if max_replicas < 1:
            raise ValueError(f"max_replicas must be >= 1, got {max_replicas}")
        if overload_latency_ratio <= 1.0:
            raise ValueError(
                "overload_latency_ratio must be > 1, got "
                f"{overload_latency_ratio}"
            )
        if not 0.0 <= idle_latency_ratio < 1.0:
            raise ValueError(
                f"idle_latency_ratio must be in [0, 1), got {idle_latency_ratio}"
            )
        self.interval_requests = int(interval_requests)
        self.drift_threshold = float(drift_threshold)
        self.max_total_workers = (
            None if max_total_workers is None else int(max_total_workers)
        )
        self.max_replicas = int(max_replicas)
        self.overload_latency_ratio = float(overload_latency_ratio)
        self.idle_latency_ratio = float(idle_latency_ratio)

    # ------------------------------------------------------------------
    def evaluate(
        self,
        signals: Sequence[ShardSignal],
        *,
        sizing_loads: Sequence[float],
        window_requests: int,
    ) -> Optional[ScaleDecision]:
        """One policy evaluation over an observation window.

        ``sizing_loads`` is the per-shard load distribution the current
        replica allocation was sized from (the engine's drift
        reference); ``window_requests`` is how many requests the window
        covers.  Returns ``None`` while the window is too small, a
        no-op :class:`ScaleDecision` when the fleet is balanced, or the
        spawn/retire lists otherwise.
        """
        if len(signals) != len(sizing_loads):
            raise ValueError(
                f"{len(signals)} signals for {len(sizing_loads)} sizing loads"
            )
        if window_requests < self.interval_requests:
            return None
        budget = self.max_total_workers
        if budget is None:
            budget = sum(s.replicas for s in signals)

        observed = normalize_loads(
            [max(0.0, s.observed_work) for s in signals]
        )
        total_work = sum(max(0.0, s.observed_work) for s in signals)
        if total_work <= 0:
            # A window with no exact-phase work carries no load signal.
            return ScaleDecision(reason="no work observed")

        drift = load_drift(sizing_loads, observed)
        if drift > self.drift_threshold:
            return self._replan(signals, observed, drift, budget)
        return self._latency_step(signals, budget, drift)

    # ------------------------------------------------------------------
    def _replan(
        self,
        signals: Sequence[ShardSignal],
        observed: Tuple[float, ...],
        drift: float,
        budget: int,
    ) -> ScaleDecision:
        """Recompute the whole allocation from observed loads and emit
        the spawn/retire lists that reconcile the fleet to it."""
        live = [s for s in signals if not s.dead]
        if not live:
            return ScaleDecision(drift=drift, reason="all shards dead")
        # Dead shards keep their current (unservable) count; the live
        # budget is what remains.
        dead_total = sum(s.replicas for s in signals if s.dead)
        live_budget = max(len(live), budget - dead_total)
        live_loads = [observed[s.shard_id] for s in live]
        targets = suggest_replicas_for_loads(
            live_loads,
            live_budget - len(live),
            max_per_shard=self.max_replicas,
        )
        scale_up: List[int] = []
        scale_down: List[int] = []
        for signal, target in zip(live, targets):
            delta = target - signal.replicas
            if delta > 0:
                scale_up.extend([signal.shard_id] * delta)
            elif delta < 0:
                scale_down.extend([signal.shard_id] * (-delta))
        return ScaleDecision(
            scale_up=tuple(scale_up),
            scale_down=tuple(scale_down),
            replan=True,
            drift=drift,
            reason=f"load drift {drift:.3f} > {self.drift_threshold:.3f}",
            sizing_loads=observed,
        )

    def _latency_step(
        self, signals: Sequence[ShardSignal], budget: int, drift: float
    ) -> ScaleDecision:
        """One reactive step from the latency signal: +1 replica for
        clear overload, -1 for clear idleness (at most one of each per
        evaluation — small steps keep the loop stable)."""
        live = [
            s
            for s in signals
            if not s.dead and math.isfinite(s.mean_latency_s) and s.answered > 0
        ]
        if len(live) < 2:
            return ScaleDecision(drift=drift, reason="balanced")
        mean = sum(s.mean_latency_s for s in live) / len(live)
        scale_up: Tuple[int, ...] = ()
        scale_down: Tuple[int, ...] = ()
        total = sum(s.replicas for s in signals)
        hot = max(live, key=lambda s: (s.mean_latency_s, -s.shard_id))
        if (
            mean > 0
            and hot.mean_latency_s > self.overload_latency_ratio * mean
            and hot.replicas < self.max_replicas
            and total < budget
        ):
            scale_up = (hot.shard_id,)
        cold_pool = [s for s in live if s.replicas > 1 and s.shard_id != (
            scale_up[0] if scale_up else None
        )]
        if cold_pool:
            cold = min(
                cold_pool, key=lambda s: (s.mean_latency_s, s.shard_id)
            )
            if mean > 0 and cold.mean_latency_s < self.idle_latency_ratio * mean:
                scale_down = (cold.shard_id,)
        if not scale_up and not scale_down:
            return ScaleDecision(drift=drift, reason="balanced")
        return ScaleDecision(
            scale_up=scale_up,
            scale_down=scale_down,
            drift=drift,
            reason="latency imbalance",
        )

    def __repr__(self) -> str:
        return (
            f"AutoScaler(interval={self.interval_requests}, "
            f"drift_threshold={self.drift_threshold}, "
            f"budget={self.max_total_workers}, "
            f"max_replicas={self.max_replicas})"
        )
