"""End-task quality metrics used in the paper's Fig. 11."""

from repro.metrics.perplexity import perplexity, perplexity_from_proba
from repro.metrics.bleu import bleu, sentence_bleu
from repro.metrics.multilabel import precision_at_k, recall_at_k

__all__ = [
    "perplexity",
    "perplexity_from_proba",
    "bleu",
    "sentence_bleu",
    "precision_at_k",
    "recall_at_k",
]
