"""Corpus BLEU for the NMT workload (Fig. 11a y-axis).

Standard BLEU-4 with brevity penalty (Papineni et al. 2002), over
integer token sequences — the synthetic NMT task emits token ids, so no
tokenizer is needed.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import List, Sequence, Tuple


def _ngrams(tokens: Sequence[int], order: int) -> Counter:
    return Counter(
        tuple(tokens[i : i + order]) for i in range(len(tokens) - order + 1)
    )


def _clipped_matches(
    candidate: Sequence[int], reference: Sequence[int], order: int
) -> Tuple[int, int]:
    """(clipped match count, candidate n-gram count) for one order."""
    cand = _ngrams(candidate, order)
    if not cand:
        return 0, 0
    ref = _ngrams(reference, order)
    matches = sum(min(count, ref[gram]) for gram, count in cand.items())
    return matches, sum(cand.values())


def sentence_bleu(
    candidate: Sequence[int],
    reference: Sequence[int],
    max_order: int = 4,
    smoothing: float = 1.0,
) -> float:
    """Smoothed sentence-level BLEU (add-``smoothing`` on counts)."""
    return bleu([candidate], [reference], max_order=max_order, smoothing=smoothing)


def bleu(
    candidates: List[Sequence[int]],
    references: List[Sequence[int]],
    max_order: int = 4,
    smoothing: float = 0.0,
) -> float:
    """Corpus BLEU in [0, 1].

    ``smoothing`` > 0 applies add-k smoothing to the modified
    precisions, needed for very short synthetic sentences.
    """
    if len(candidates) != len(references):
        raise ValueError(
            f"{len(candidates)} candidates vs {len(references)} references"
        )
    if not candidates:
        raise ValueError("empty corpus")

    log_precision_sum = 0.0
    effective_orders = 0
    for order in range(1, max_order + 1):
        matches = 0
        total = 0
        for cand, ref in zip(candidates, references):
            m, t = _clipped_matches(cand, ref, order)
            matches += m
            total += t
        if total == 0:
            # No candidate has any n-gram of this order (every sentence
            # is shorter than ``order``): the precision is undefined,
            # not perfect.  With smoothing the old code scored it as
            # smoothing/smoothing = 1.0, inflating one-token candidates
            # to near-full BLEU-4.  Skip the order instead and average
            # over the orders that exist (effective-order BLEU, as in
            # sacrebleu/NLTK method).
            continue
        numerator = matches + smoothing
        if numerator == 0:
            return 0.0
        effective_orders += 1
        log_precision_sum += math.log(numerator / (total + smoothing))

    if effective_orders == 0:
        return 0.0
    candidate_len = sum(len(c) for c in candidates)
    reference_len = sum(len(r) for r in references)
    if candidate_len == 0:
        return 0.0
    brevity = (
        1.0
        if candidate_len >= reference_len
        else math.exp(1.0 - reference_len / candidate_len)
    )
    return brevity * math.exp(log_precision_sum / effective_orders)
