"""Multi-label ranking metrics for the recommendation workload.

Amazon-670K is evaluated with precision@k (the standard XC metric, used
in XMLCNN and the extreme-classification repository the paper cites).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.validation import check_positive


def _as_label_sets(true_labels: Sequence) -> list:
    return [set(np.atleast_1d(row).tolist()) for row in true_labels]


def precision_at_k(
    scores: np.ndarray, true_labels: Sequence, k: int = 1
) -> float:
    """P@k: fraction of the top-k predictions that are true labels.

    ``scores`` has shape ``(samples, categories)``; ``true_labels`` is a
    per-sample collection of positive label indices (ragged allowed).
    """
    check_positive("k", k)
    array = np.asarray(scores)
    if array.ndim != 2:
        raise ValueError(f"scores must be 2-D, got shape {array.shape}")
    if k > array.shape[1]:
        raise ValueError(f"k={k} exceeds category count {array.shape[1]}")
    label_sets = _as_label_sets(true_labels)
    if len(label_sets) != array.shape[0]:
        raise ValueError(
            f"{len(label_sets)} label rows vs {array.shape[0]} score rows"
        )

    top = np.argpartition(array, -k, axis=1)[:, -k:]
    hits = sum(
        len(set(row.tolist()) & labels) for row, labels in zip(top, label_sets)
    )
    return hits / (array.shape[0] * k)


def recall_at_k(scores: np.ndarray, true_labels: Sequence, k: int = 1) -> float:
    """R@k: fraction of true labels recovered in the top-k predictions.

    ``k`` beyond the category count is rejected, matching
    :func:`precision_at_k` — silently clamping would report a different
    metric (R@categories) under the requested name.
    """
    check_positive("k", k)
    array = np.asarray(scores)
    if array.ndim != 2:
        raise ValueError(f"scores must be 2-D, got shape {array.shape}")
    if k > array.shape[1]:
        raise ValueError(f"k={k} exceeds category count {array.shape[1]}")
    label_sets = _as_label_sets(true_labels)
    if len(label_sets) != array.shape[0]:
        raise ValueError(
            f"{len(label_sets)} label rows vs {array.shape[0]} score rows"
        )

    top = np.argpartition(array, -k, axis=1)[:, -k:]
    hits = 0
    total = 0
    for row, labels in zip(top, label_sets):
        if not labels:
            continue
        hits += len(set(row.tolist()) & labels)
        total += len(labels)
    if total == 0:
        raise ValueError("no positive labels provided")
    return hits / total
