"""Perplexity for language-modeling workloads (Fig. 11 b/c y-axis)."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive

#: Probability floor: a screened model can assign (near-)zero mass to a
#: tail token; real perplexity harnesses clamp to avoid infinities.
_PROBA_FLOOR = 1e-12


def perplexity(log_probs: np.ndarray) -> float:
    """Perplexity from per-token log probabilities (natural log)."""
    array = np.asarray(log_probs, dtype=np.float64)
    if array.size == 0:
        raise ValueError("log_probs is empty")
    return float(np.exp(-np.mean(array)))


def perplexity_from_proba(probabilities: np.ndarray, targets: np.ndarray) -> float:
    """Perplexity of predicted distributions against target tokens.

    ``probabilities`` has shape ``(tokens, vocab)``; ``targets`` the
    gold token index per row.
    """
    proba = np.asarray(probabilities, dtype=np.float64)
    target_idx = np.asarray(targets, dtype=np.intp)
    if proba.ndim != 2:
        raise ValueError(f"probabilities must be 2-D, got shape {proba.shape}")
    if target_idx.shape != (proba.shape[0],):
        raise ValueError(
            f"targets shape {target_idx.shape} incompatible with "
            f"{proba.shape[0]} rows"
        )
    check_positive("num tokens", proba.shape[0])
    vocab = proba.shape[1]
    # Fancy indexing would silently wrap negative indices (and raise a
    # shape-obscuring IndexError past the end) — either way scoring the
    # wrong token; reject out-of-vocabulary targets explicitly.
    bad = (target_idx < 0) | (target_idx >= vocab)
    if np.any(bad):
        first = int(np.flatnonzero(bad)[0])
        raise ValueError(
            f"targets must be in [0, {vocab}); targets[{first}] = "
            f"{int(target_idx[first])}"
        )
    picked = proba[np.arange(proba.shape[0]), target_idx]
    return perplexity(np.log(np.maximum(picked, _PROBA_FLOOR)))
