"""The DRAM system facade (the "Ramulator interface" of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.dram.address import AddressMapping
from repro.dram.request import Request, RequestType
from repro.dram.scheduler import ChannelScheduler
from repro.dram.timing import DDR4Timing, DDR4_2400
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DRAMStats:
    """Aggregate statistics of one simulation run."""

    cycles: int
    reads: int
    writes: int
    activations: int
    row_hits: int
    refreshes: int
    bytes_transferred: int
    clock_hz: float

    @property
    def seconds(self) -> float:
        return self.cycles / self.clock_hz

    @property
    def bandwidth(self) -> float:
        """Achieved bandwidth in bytes/second."""
        if self.cycles == 0:
            return 0.0
        return self.bytes_transferred / self.seconds

    @property
    def row_hit_rate(self) -> float:
        accesses = self.reads + self.writes
        if accesses == 0:
            return 0.0
        return self.row_hits / accesses


class DRAMSystem:
    """Multiple channels of DDR4 behind a burst-granular request API.

    Typical use::

        system = DRAMSystem(DDR4_2400, channels=1, ranks_per_channel=8)
        reqs = system.stream_read(base=0, num_bytes=1 << 20)
        stats = system.drain()
    """

    def __init__(
        self,
        timing: DDR4Timing = DDR4_2400,
        channels: int = 8,
        ranks_per_channel: int = 8,
        queue_depth: int = 64,
        use_candidate_cache: bool = True,
    ):
        check_positive("channels", channels)
        check_positive("ranks_per_channel", ranks_per_channel)
        self.timing = timing
        self.mapping = AddressMapping(timing, channels, ranks_per_channel)
        self.channels: List[ChannelScheduler] = [
            ChannelScheduler(
                timing,
                ranks_per_channel,
                queue_depth,
                use_candidate_cache=use_candidate_cache,
            )
            for _ in range(channels)
        ]

    # ------------------------------------------------------------------
    def submit(self, request_type: RequestType, address: int, arrival: int = 0) -> Request:
        """Decode and enqueue one burst request; returns the request."""
        decoded = self.mapping.decode(address)
        request = Request(type=request_type, address=decoded, arrival=arrival)
        self.channels[decoded.channel].enqueue(request)
        return request

    def stream_read(self, base: int, num_bytes: int, arrival: int = 0) -> List[Request]:
        """Enqueue a sequential read stream (weight streaming pattern)."""
        return [
            self.submit(RequestType.READ, addr, arrival)
            for addr in self.mapping.sequential_addresses(base, num_bytes)
        ]

    def stream_write(self, base: int, num_bytes: int, arrival: int = 0) -> List[Request]:
        """Enqueue a sequential write stream (result write-back pattern)."""
        return [
            self.submit(RequestType.WRITE, addr, arrival)
            for addr in self.mapping.sequential_addresses(base, num_bytes)
        ]

    def gather_read(self, addresses: Iterable[int], arrival: int = 0) -> List[Request]:
        """Enqueue a random-gather read stream (candidate-row pattern)."""
        return [self.submit(RequestType.READ, a, arrival) for a in addresses]

    # ------------------------------------------------------------------
    def drain(self) -> DRAMStats:
        """Simulate until every queued request completes."""
        last = 0
        for channel in self.channels:
            last = max(last, channel.drain())
        reads = sum(c.reads for c in self.channels)
        writes = sum(c.writes for c in self.channels)
        return DRAMStats(
            cycles=last,
            reads=reads,
            writes=writes,
            activations=sum(c.total_activations for c in self.channels),
            row_hits=sum(c.total_row_hits for c in self.channels),
            refreshes=sum(r.refreshes for c in self.channels for r in c.ranks),
            bytes_transferred=(reads + writes) * self.timing.burst_bytes,
            clock_hz=self.timing.clock_hz,
        )
