"""A DDR4 main-memory model in the spirit of Ramulator.

The paper builds "a cycle-accurate simulator for the ENMC DIMM that
interfaces with Ramulator to derive the DRAM timing information".  This
package is our Ramulator substitute:

* :class:`DDR4Timing` — timing parameters (Table 3 values by default);
* :class:`AddressMapping` — physical address → channel/rank/bank-group/
  bank/row/column decomposition;
* :class:`Bank`, :class:`Rank` — per-bank state machines enforcing
  tRCD/tRP/tRC/tCCD/tRRD/tFAW and the shared data bus;
* :class:`FRFCFSScheduler` + :class:`DRAMSystem` — command-level
  simulation with a first-ready, first-come-first-served queue;
* :class:`AnalyticDRAMModel` — a closed-form bandwidth/latency model
  cross-validated against the cycle model (used for paper-scale sweeps
  where cycle simulation in Python would be prohibitive).
"""

from repro.dram.timing import DDR4Timing, DDR4_2400, DDR4_2666
from repro.dram.address import AddressMapping, DecodedAddress
from repro.dram.request import Request, RequestType
from repro.dram.bank import Bank
from repro.dram.rank import Rank
from repro.dram.dram_system import DRAMStats, DRAMSystem
from repro.dram.analytic import AnalyticDRAMModel, StreamEstimate

__all__ = [
    "DDR4Timing",
    "DDR4_2400",
    "DDR4_2666",
    "AddressMapping",
    "DecodedAddress",
    "Request",
    "RequestType",
    "Bank",
    "Rank",
    "DRAMSystem",
    "DRAMStats",
    "AnalyticDRAMModel",
    "StreamEstimate",
]
