"""FR-FCFS command scheduling for one channel.

The scheduler is event-driven: instead of ticking every cycle it
computes, for each queued request, the earliest legal issue cycle of
that request's *next required command* (column access on a row hit,
PRE on a conflict, ACT on a closed bank), then issues the best
candidate under first-ready / first-come-first-served ordering:

1. among requests whose row is already open (ready column commands),
   the one with the earliest issue cycle (ties: oldest);
2. otherwise the oldest request's required command.

One command per cycle crosses the C/A bus; data transfers serialize on
the channel's data bus.

Scheduling cost: the naive controller recomputes every queued
request's candidate on every step — O(queue_depth²) command
evaluations per issued command.  Since a command only changes the
timing state of *its own* bank (plus narrow rank-level side channels:
tRRD/tFAW for ACTs, tCCD for column commands, tRFC for refresh), the
scheduler instead caches each request's candidate and invalidates
only the entries the issued command can have touched.  The cached
candidate stores the *structural* earliest cycle — bank and
bank-group constraints only; the two clamps that move on every step
(the wall clock and the shared data bus) are applied at pick time, so
they never force invalidation.  The uncached path is kept behind
``use_candidate_cache=False`` as the semantic reference; the
drain-identity tests in ``tests/test_dram_scheduler_cache.py`` hold
the two paths to identical command streams.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.dram.rank import Rank
from repro.dram.request import Request, RequestType
from repro.dram.timing import DDR4Timing
from repro.obs.metrics import power_of_two_buckets
from repro.obs.recorder import NULL_RECORDER


@dataclass
class _Candidate:
    request: Request
    command: str  # "ACT" | "PRE" | "COL"
    issue_cycle: int
    is_hit: bool


class ChannelScheduler:
    """One memory channel: ranks, shared buses, FR-FCFS queue."""

    def __init__(
        self,
        timing: DDR4Timing,
        ranks: int,
        queue_depth: int = 64,
        use_candidate_cache: bool = True,
        recorder=NULL_RECORDER,
    ):
        self.timing = timing
        #: Observability sink: per-command issue counters
        #: (``dram.cmd.*``) and the queue-depth distribution
        #: (``dram.queue_depth``); the no-op recorder by default.
        self.recorder = recorder
        self.ranks: List[Rank] = [Rank(timing) for _ in range(ranks)]
        #: The scheduler's visible window (the real controller's
        #: ``queue_depth``-entry command queue); requests beyond it wait
        #: in the backlog FIFO and enter as slots free up.  This also
        #: bounds each scheduling step to O(queue_depth).
        self.queue: List[Request] = []
        self.backlog: "deque[Request]" = deque()
        self.queue_depth = queue_depth
        self.cycle = 0
        self._cmd_bus_free = 0
        self._data_bus_free = 0
        #: Candidate cache keyed by ``request_id`` plus the reverse
        #: indices used for targeted invalidation: every cached entry
        #: is a member of its bank's set and of its (rank, command)
        #: set.
        self.use_candidate_cache = use_candidate_cache
        self._cache: Dict[int, _Candidate] = {}
        self._bank_members: Dict[Tuple[int, int], Set[int]] = {}
        self._rank_members: Dict[Tuple[int, str], Set[int]] = {}
        # statistics
        self.reads = 0
        self.writes = 0
        self.data_bus_busy_cycles = 0

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        return len(self.queue) + len(self.backlog)

    def enqueue(self, request: Request) -> None:
        if request.address.rank >= len(self.ranks):
            raise ValueError(
                f"request rank {request.address.rank} out of range "
                f"({len(self.ranks)} ranks)"
            )
        if len(self.queue) < self.queue_depth:
            self.queue.append(request)
        else:
            self.backlog.append(request)

    def _refill(self) -> None:
        while self.backlog and len(self.queue) < self.queue_depth:
            self.queue.append(self.backlog.popleft())

    # ------------------------------------------------------------------
    def _next_command_raw(self, request: Request) -> _Candidate:
        """The next required command and its *structural* earliest cycle.

        Only bank and bank-group constraints enter the stored cycle —
        the wall clock and the shared data bus are excluded so the
        candidate stays valid (cacheable) across steps that do not
        touch this bank.  :meth:`_effective_cycle` applies the two
        excluded clamps at pick time.
        """
        addr = request.address
        rank = self.ranks[addr.rank]
        bank = rank.banks[addr.flat_bank]
        is_write = request.type is RequestType.WRITE

        if bank.open_row == addr.row:
            earliest = bank.earliest_column(is_write)
            # Bank-group constraint: tCCD_L within a group, tCCD_S across.
            earliest = max(
                earliest, rank.earliest_column_for_group(addr.bank_group)
            )
            return _Candidate(request, "COL", earliest, True)

        if bank.open_row is not None:
            return _Candidate(request, "PRE", bank.earliest_precharge(), False)

        return _Candidate(request, "ACT", rank.earliest_activate(addr.flat_bank), False)

    def _effective_cycle(self, candidate: _Candidate) -> int:
        """The candidate's actual earliest issue cycle right now."""
        earliest = candidate.issue_cycle
        if candidate.command == "COL":
            # Data-bus constraint: the burst must not overlap a prior one.
            is_write = candidate.request.type is RequestType.WRITE
            latency = self.timing.cwl if is_write else self.timing.cl
            earliest = max(earliest, self._data_bus_free - latency)
        return max(earliest, self.cycle)

    # -- candidate cache ------------------------------------------------
    def _cached_candidate(self, request: Request) -> _Candidate:
        candidate = self._cache.get(request.request_id)
        if candidate is None:
            candidate = self._next_command_raw(request)
            key = request.request_id
            addr = request.address
            self._cache[key] = candidate
            self._bank_members.setdefault(
                (addr.rank, addr.flat_bank), set()
            ).add(key)
            self._rank_members.setdefault(
                (addr.rank, candidate.command), set()
            ).add(key)
        return candidate

    def _invalidate_keys(self, keys) -> None:
        for key in tuple(keys):
            candidate = self._cache.pop(key, None)
            if candidate is None:
                continue
            addr = candidate.request.address
            self._bank_members[(addr.rank, addr.flat_bank)].discard(key)
            self._rank_members[(addr.rank, candidate.command)].discard(key)

    def _invalidate_bank(self, rank: int, flat_bank: int) -> None:
        members = self._bank_members.get((rank, flat_bank))
        if members:
            self._invalidate_keys(members)

    def _invalidate_rank_command(self, rank: int, command: str) -> None:
        members = self._rank_members.get((rank, command))
        if members:
            self._invalidate_keys(members)

    def _invalidate_rank(self, rank: int) -> None:
        """Refresh closed every row in the rank: drop all its entries."""
        self._invalidate_keys(
            [
                key
                for key, candidate in self._cache.items()
                if candidate.request.address.rank == rank
            ]
        )

    # ------------------------------------------------------------------
    def _pick(self) -> Optional[_Candidate]:
        if not self.queue:
            return None
        if not self.use_candidate_cache:
            return self._pick_uncached()
        # Wall-clock FR-FCFS as a single lexicographic minimum over
        # (issue cycle, miss-before-hit, arrival).  Strict-< keeps the
        # first minimal entry in queue order, matching the reference
        # two-phase pick exactly.
        best: Optional[_Candidate] = None
        best_key: Optional[Tuple[int, bool, int]] = None
        for request in self.queue:
            candidate = self._cached_candidate(request)
            key = (
                self._effective_cycle(candidate),
                not candidate.is_hit,
                request.arrival,
            )
            if best_key is None or key < best_key:
                best, best_key = candidate, key
        if best is not None and best_key is not None:
            # The pick is consumed at its effective cycle.
            best = _Candidate(best.request, best.command, best_key[0], best.is_hit)
        return best

    def _pick_uncached(self) -> Optional[_Candidate]:
        """Reference pick: recompute every candidate (O(queue²) drains)."""
        candidates = [
            _Candidate(
                raw.request, raw.command, self._effective_cycle(raw), raw.is_hit
            )
            for raw in (self._next_command_raw(r) for r in self.queue)
        ]
        # Wall-clock FR-FCFS: look only at commands issuable at the
        # earliest possible cycle, so e.g. ACTs to other banks proceed
        # while an opened row waits out tRCD.  Among those, prefer row
        # hits, then the oldest request.
        first_cycle = min(c.issue_cycle for c in candidates)
        ready = [c for c in candidates if c.issue_cycle == first_cycle]
        return min(ready, key=lambda c: (not c.is_hit, c.request.arrival))

    # ------------------------------------------------------------------
    def step(self) -> Optional[Request]:
        """Issue one command; returns the request if it completed."""
        choice = self._pick()
        if choice is None:
            return None
        if self.recorder.enabled:
            self.recorder.observe(
                "dram.queue_depth",
                len(self.queue),
                bounds=power_of_two_buckets(),
            )

        issue = max(choice.issue_cycle, self._cmd_bus_free, self.cycle)
        addr = choice.request.address
        rank = self.ranks[addr.rank]

        # Refresh is checked at the issue point; a due refresh delays it.
        usable = rank.maybe_refresh(issue)
        if usable > issue:
            # Bank state changed (rows closed); recompute next round.
            self.cycle = max(self.cycle, issue)
            self._cmd_bus_free = max(self._cmd_bus_free, issue + 1)
            self._invalidate_rank(addr.rank)
            self.recorder.increment("dram.refresh_delays")
            return None

        bank = rank.banks[addr.flat_bank]
        self._cmd_bus_free = issue + 1
        self.cycle = issue

        if choice.command == "ACT":
            self.recorder.increment("dram.cmd.act")
            bank.row_misses += 1
            rank.activate(issue, addr.flat_bank, addr.row)
            # The ACT changed this bank's state (requests to it may now
            # be COL/PRE) and moved the rank's tRRD/tFAW window (all
            # cached ACT cycles in the rank are stale).
            self._invalidate_bank(addr.rank, addr.flat_bank)
            self._invalidate_rank_command(addr.rank, "ACT")
            return None
        if choice.command == "PRE":
            self.recorder.increment("dram.cmd.pre")
            bank.precharge(issue)
            # Only this bank's state changed (its requests become ACTs).
            self._invalidate_bank(addr.rank, addr.flat_bank)
            return None

        # Column command: completes the request.
        self.recorder.increment("dram.cmd.col")
        if choice.request.type is RequestType.WRITE:
            done = bank.write(issue, addr.row)
            self.writes += 1
        else:
            done = bank.read(issue, addr.row)
            self.reads += 1
        rank.record_column(issue, addr.bank_group)
        self._data_bus_free = done
        self.data_bus_busy_cycles += self.timing.burst_cycles
        choice.request.completed_at = done
        self.queue.remove(choice.request)
        # The column access updated this bank's tRTP/tWR state and the
        # rank's tCCD window (every cached COL cycle in the rank is
        # stale); the completed request's own entry falls out with its
        # bank.  The data bus moved too, but that clamp lives in
        # :meth:`_effective_cycle`, not in the cached cycles.
        self._invalidate_bank(addr.rank, addr.flat_bank)
        self._invalidate_rank_command(addr.rank, "COL")
        self._refill()
        return choice.request

    def drain(self, max_commands: int = 10_000_000) -> int:
        """Run until the queue empties; returns the last completion cycle."""
        self._refill()
        last_done = self.cycle
        for _ in range(max_commands):
            if not self.queue:
                break
            finished = self.step()
            if finished is not None:
                last_done = max(last_done, finished.completed_at)
        else:
            raise RuntimeError("scheduler did not drain (command budget exhausted)")
        return max(last_done, self._data_bus_free)

    # ------------------------------------------------------------------
    @property
    def total_activations(self) -> int:
        return sum(rank.total_activations for rank in self.ranks)

    @property
    def total_row_hits(self) -> int:
        return sum(rank.total_row_hits for rank in self.ranks)
