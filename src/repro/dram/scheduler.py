"""FR-FCFS command scheduling for one channel.

The scheduler is event-driven: instead of ticking every cycle it
computes, for each queued request, the earliest legal issue cycle of
that request's *next required command* (column access on a row hit,
PRE on a conflict, ACT on a closed bank), then issues the best
candidate under first-ready / first-come-first-served ordering:

1. among requests whose row is already open (ready column commands),
   the one with the earliest issue cycle (ties: oldest);
2. otherwise the oldest request's required command.

One command per cycle crosses the C/A bus; data transfers serialize on
the channel's data bus.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional

from repro.dram.rank import Rank
from repro.dram.request import Request, RequestType
from repro.dram.timing import DDR4Timing


@dataclass
class _Candidate:
    request: Request
    command: str  # "ACT" | "PRE" | "COL"
    issue_cycle: int
    is_hit: bool


class ChannelScheduler:
    """One memory channel: ranks, shared buses, FR-FCFS queue."""

    def __init__(self, timing: DDR4Timing, ranks: int, queue_depth: int = 64):
        self.timing = timing
        self.ranks: List[Rank] = [Rank(timing) for _ in range(ranks)]
        #: The scheduler's visible window (the real controller's
        #: ``queue_depth``-entry command queue); requests beyond it wait
        #: in the backlog FIFO and enter as slots free up.  This also
        #: bounds each scheduling step to O(queue_depth).
        self.queue: List[Request] = []
        self.backlog: "deque[Request]" = deque()
        self.queue_depth = queue_depth
        self.cycle = 0
        self._cmd_bus_free = 0
        self._data_bus_free = 0
        # statistics
        self.reads = 0
        self.writes = 0
        self.data_bus_busy_cycles = 0

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        return len(self.queue) + len(self.backlog)

    def enqueue(self, request: Request) -> None:
        if request.address.rank >= len(self.ranks):
            raise ValueError(
                f"request rank {request.address.rank} out of range "
                f"({len(self.ranks)} ranks)"
            )
        if len(self.queue) < self.queue_depth:
            self.queue.append(request)
        else:
            self.backlog.append(request)

    def _refill(self) -> None:
        while self.backlog and len(self.queue) < self.queue_depth:
            self.queue.append(self.backlog.popleft())

    # ------------------------------------------------------------------
    def _next_command(self, request: Request) -> _Candidate:
        """The next required command for ``request`` and its earliest cycle."""
        addr = request.address
        rank = self.ranks[addr.rank]
        bank = rank.banks[addr.flat_bank]
        is_write = request.type is RequestType.WRITE

        if bank.open_row == addr.row:
            earliest = bank.earliest_column(is_write)
            # Bank-group constraint: tCCD_L within a group, tCCD_S across.
            earliest = max(
                earliest, rank.earliest_column_for_group(addr.bank_group)
            )
            # Data-bus constraint: the burst must not overlap a prior one.
            latency = self.timing.cwl if is_write else self.timing.cl
            earliest = max(earliest, self._data_bus_free - latency)
            return _Candidate(request, "COL", max(earliest, self.cycle), True)

        if bank.open_row is not None:
            earliest = bank.earliest_precharge()
            return _Candidate(request, "PRE", max(earliest, self.cycle), False)

        earliest = rank.earliest_activate(addr.flat_bank)
        return _Candidate(request, "ACT", max(earliest, self.cycle), False)

    def _pick(self) -> Optional[_Candidate]:
        if not self.queue:
            return None
        candidates = [self._next_command(r) for r in self.queue]
        # Wall-clock FR-FCFS: look only at commands issuable at the
        # earliest possible cycle, so e.g. ACTs to other banks proceed
        # while an opened row waits out tRCD.  Among those, prefer row
        # hits, then the oldest request.
        first_cycle = min(c.issue_cycle for c in candidates)
        ready = [c for c in candidates if c.issue_cycle == first_cycle]
        return min(ready, key=lambda c: (not c.is_hit, c.request.arrival))

    # ------------------------------------------------------------------
    def step(self) -> Optional[Request]:
        """Issue one command; returns the request if it completed."""
        choice = self._pick()
        if choice is None:
            return None

        issue = max(choice.issue_cycle, self._cmd_bus_free, self.cycle)
        addr = choice.request.address
        rank = self.ranks[addr.rank]

        # Refresh is checked at the issue point; a due refresh delays it.
        usable = rank.maybe_refresh(issue)
        if usable > issue:
            # Bank state changed (rows closed); recompute next round.
            self.cycle = max(self.cycle, issue)
            self._cmd_bus_free = max(self._cmd_bus_free, issue + 1)
            return None

        bank = rank.banks[addr.flat_bank]
        self._cmd_bus_free = issue + 1
        self.cycle = issue

        if choice.command == "ACT":
            bank.row_misses += 1
            rank.activate(issue, addr.flat_bank, addr.row)
            return None
        if choice.command == "PRE":
            bank.precharge(issue)
            return None

        # Column command: completes the request.
        if choice.request.type is RequestType.WRITE:
            done = bank.write(issue, addr.row)
            self.writes += 1
        else:
            done = bank.read(issue, addr.row)
            self.reads += 1
        rank.record_column(issue, addr.bank_group)
        self._data_bus_free = done
        self.data_bus_busy_cycles += self.timing.burst_cycles
        choice.request.completed_at = done
        self.queue.remove(choice.request)
        self._refill()
        return choice.request

    def drain(self, max_commands: int = 10_000_000) -> int:
        """Run until the queue empties; returns the last completion cycle."""
        self._refill()
        last_done = self.cycle
        for _ in range(max_commands):
            if not self.queue:
                break
            finished = self.step()
            if finished is not None:
                last_done = max(last_done, finished.completed_at)
        else:
            raise RuntimeError("scheduler did not drain (command budget exhausted)")
        return max(last_done, self._data_bus_free)

    # ------------------------------------------------------------------
    @property
    def total_activations(self) -> int:
        return sum(rank.total_activations for rank in self.ranks)

    @property
    def total_row_hits(self) -> int:
        return sum(rank.total_row_hits for rank in self.ranks)
