"""DDR4 timing parameter sets.

All values are in DRAM command-clock cycles (tCK).  For DDR4-2400 the
I/O runs at 1200 MHz (2400 MT/s double data rate), so tCK = 0.833 ns and
a 64-byte burst (BL8 on a 64-bit bus) occupies 4 clocks.

The defaults reproduce the paper's Table 3: "CL-tRCD-tRP: 16-16-16,
tRC=55, tCCD=4, tRRD=4, tFAW=6".  tFAW=6 as printed cannot be cycles
(four ACTs cannot complete in 6 tCK); we read it as 6×tRRD = 24 cycles,
which matches JEDEC DDR4-2400 (tFAW ≈ 21 ns ≈ 25 tCK).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DDR4Timing:
    """DDR4 device timing in command-clock cycles."""

    name: str = "DDR4-2400"
    clock_hz: float = 1.2e9  # command clock (half the MT/s rate)
    burst_length: int = 8  # BL8
    bus_bits: int = 64  # DIMM data bus width

    cl: int = 16  # CAS latency (READ to data)
    cwl: int = 12  # CAS write latency
    trcd: int = 16  # ACT to RD/WR
    trp: int = 16  # PRE to ACT
    trc: int = 55  # ACT to ACT, same bank
    tras: int = 39  # ACT to PRE (trc - trp)
    tccd: int = 4  # column-to-column, different bank groups (tCCD_S)
    #: Column-to-column within one bank group (DDR4's tCCD_L) — bank
    #: groups exist precisely because back-to-back column accesses to
    #: the same group are slower.
    tccd_l: int = 6
    trrd: int = 4  # ACT to ACT, different banks
    tfaw: int = 24  # four-activate window
    trtp: int = 9  # READ to PRE
    twr: int = 18  # write recovery
    twtr: int = 9  # write-to-read turnaround
    trefi: int = 9360  # refresh interval (7.8 us)
    trfc: int = 420  # refresh cycle time (350 ns at 8 Gb)

    rows_per_bank: int = 65536
    columns_per_row: int = 1024
    device_width: int = 8  # x8 devices
    banks_per_group: int = 4
    bank_groups: int = 4

    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in ("clock_hz", "burst_length", "bus_bits", "cl", "trcd", "trp"):
            check_positive(name, getattr(self, name))
        if self.tras + self.trp > self.trc + 1:
            raise ValueError(
                f"inconsistent timing: tRAS({self.tras}) + tRP({self.trp}) "
                f"> tRC({self.trc}) + 1"
            )

    # ------------------------------------------------------------------
    @property
    def banks_per_rank(self) -> int:
        return self.banks_per_group * self.bank_groups

    @property
    def burst_cycles(self) -> int:
        """Clocks the data bus is busy per burst (DDR: 2 beats/clock)."""
        return self.burst_length // 2

    @property
    def burst_bytes(self) -> int:
        """Bytes transferred per burst (64 for BL8 on a 64-bit bus)."""
        return self.burst_length * self.bus_bits // 8

    @property
    def row_bytes(self) -> int:
        """Bytes per open row across the rank (page size × chips)."""
        chips = self.bus_bits // self.device_width
        return self.columns_per_row * self.device_width // 8 * chips

    @property
    def peak_bandwidth(self) -> float:
        """Peak channel bandwidth in bytes/second."""
        return self.clock_hz * 2 * self.bus_bits / 8

    @property
    def ns_per_cycle(self) -> float:
        return 1e9 / self.clock_hz


#: Table 3 configuration (the ENMC DIMM).
DDR4_2400 = DDR4Timing()

#: The CPU baseline's memory (Xeon 8280: DDR4-2666).
DDR4_2666 = DDR4Timing(
    name="DDR4-2666",
    clock_hz=1.333e9,
    cl=19,
    cwl=14,
    trcd=19,
    trp=19,
    trc=62,
    tras=43,
    tccd=4,
    trrd=4,
    tfaw=26,
    trtp=10,
    twr=20,
    twtr=10,
    trefi=10400,
    trfc=467,
)
