"""Closed-form DRAM performance model for paper-scale sweeps.

Cycle simulation in Python covers unit tests and small tiles; the
Fig. 13/14/15 experiments stream hundreds of megabytes per inference,
which the analytic model covers instead.  Its two access patterns match
the two the ENMC workload generates:

* **stream** — sequential weight streaming (screening phase).  Row
  activations overlap with bursts via bank interleaving, so throughput
  is bus-bound; refresh steals a tRFC/tREFI fraction, plus a one-time
  ramp latency.
* **gather** — random row gathers (candidate phase).  Each access pays
  an ACT; throughput is the tightest of the data bus, the
  four-activate-window rate and per-bank tRC cycling across the
  rank/bank population.

``tests/test_dram_analytic.py`` and the ablation bench cross-validate
both patterns against the cycle model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dram.timing import DDR4Timing, DDR4_2400
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class StreamEstimate:
    """Analytic estimate of one access pattern's execution."""

    cycles: float
    activations: float
    bursts: float
    clock_hz: float

    @property
    def seconds(self) -> float:
        return self.cycles / self.clock_hz

    @property
    def bytes_transferred(self) -> float:
        return self.bursts * 64

    @property
    def bandwidth(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.bytes_transferred / self.seconds

    def __add__(self, other: "StreamEstimate") -> "StreamEstimate":
        if self.clock_hz != other.clock_hz:
            raise ValueError("cannot add estimates at different clocks")
        return StreamEstimate(
            cycles=self.cycles + other.cycles,
            activations=self.activations + other.activations,
            bursts=self.bursts + other.bursts,
            clock_hz=self.clock_hz,
        )


class AnalyticDRAMModel:
    """Bandwidth/latency estimates for stream and gather patterns."""

    def __init__(
        self,
        timing: DDR4Timing = DDR4_2400,
        channels: int = 1,
        ranks_per_channel: int = 8,
    ):
        check_positive("channels", channels)
        check_positive("ranks_per_channel", ranks_per_channel)
        self.timing = timing
        self.channels = channels
        self.ranks = ranks_per_channel

    # ------------------------------------------------------------------
    @property
    def refresh_fraction(self) -> float:
        return self.timing.trfc / self.timing.trefi

    @property
    def ramp_cycles(self) -> int:
        """First-access latency before the pipeline fills."""
        t = self.timing
        return t.trcd + t.cl + t.burst_cycles

    def peak_bandwidth(self) -> float:
        """Aggregate peak bytes/second across channels."""
        return self.timing.peak_bandwidth * self.channels

    # ------------------------------------------------------------------
    def stream(self, num_bytes: float) -> StreamEstimate:
        """Sequential stream of ``num_bytes`` split across channels."""
        check_positive("num_bytes", num_bytes)
        t = self.timing
        bursts = math.ceil(num_bytes / t.burst_bytes)
        bursts_per_channel = math.ceil(bursts / self.channels)
        bus_cycles = bursts_per_channel * t.burst_cycles
        cycles = bus_cycles / (1.0 - self.refresh_fraction) + self.ramp_cycles
        activations = math.ceil(num_bytes / t.row_bytes)
        return StreamEstimate(
            cycles=cycles,
            activations=activations,
            bursts=bursts,
            clock_hz=t.clock_hz,
        )

    def gather(self, accesses: int, bytes_per_access: float) -> StreamEstimate:
        """``accesses`` random-row reads of ``bytes_per_access`` each."""
        check_positive("accesses", accesses)
        check_positive("bytes_per_access", bytes_per_access)
        t = self.timing
        bursts_each = math.ceil(bytes_per_access / t.burst_bytes)
        total_bursts = accesses * bursts_each
        per_channel_accesses = math.ceil(accesses / self.channels)

        bus_cycles = math.ceil(total_bursts / self.channels) * t.burst_cycles
        # Four-activate window: 4 ACTs per tFAW per rank.
        faw_cycles = per_channel_accesses * t.tfaw / (4.0 * self.ranks)
        # Bank cycling: tRC per access spread over all banks in the channel.
        bank_cycles = per_channel_accesses * t.trc / (
            t.banks_per_rank * self.ranks
        )
        limiting = max(bus_cycles, faw_cycles, bank_cycles)
        cycles = limiting / (1.0 - self.refresh_fraction) + self.ramp_cycles
        return StreamEstimate(
            cycles=cycles,
            activations=accesses,
            bursts=total_bursts,
            clock_hz=t.clock_hz,
        )

    def single_read_latency(self) -> int:
        """Idle-bank read latency in cycles (ACT + CAS + burst)."""
        return self.ramp_cycles
