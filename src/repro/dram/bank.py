"""Per-bank state machine enforcing intra-bank timing constraints."""

from __future__ import annotations

from typing import Optional

from repro.dram.timing import DDR4Timing


class Bank:
    """One DRAM bank: an open-row register plus earliest-issue clocks.

    The bank tracks, for each command type, the earliest cycle at which
    that command may legally issue, updating the constraints whenever a
    command is accepted.  All cross-bank constraints (tRRD, tFAW, data
    bus) live in :class:`repro.dram.rank.Rank` and the channel.
    """

    def __init__(self, timing: DDR4Timing):
        self.timing = timing
        self.open_row: Optional[int] = None
        self.next_activate = 0
        self.next_precharge = 0
        self.next_read = 0
        self.next_write = 0
        # statistics
        self.activations = 0
        self.row_hits = 0
        self.row_misses = 0

    # ------------------------------------------------------------------
    # earliest-issue queries
    # ------------------------------------------------------------------
    def earliest_activate(self) -> int:
        return self.next_activate

    def earliest_precharge(self) -> int:
        return self.next_precharge

    def earliest_column(self, is_write: bool) -> int:
        return self.next_write if is_write else self.next_read

    # ------------------------------------------------------------------
    # command issue
    # ------------------------------------------------------------------
    def activate(self, cycle: int, row: int) -> None:
        if self.open_row is not None:
            raise RuntimeError("ACT issued to a bank with an open row")
        if cycle < self.next_activate:
            raise RuntimeError(
                f"ACT at {cycle} violates tRC/tRP (earliest {self.next_activate})"
            )
        t = self.timing
        self.open_row = row
        self.activations += 1
        self.next_activate = cycle + t.trc
        self.next_precharge = cycle + t.tras
        self.next_read = cycle + t.trcd
        self.next_write = cycle + t.trcd

    def precharge(self, cycle: int) -> None:
        if cycle < self.next_precharge:
            raise RuntimeError(
                f"PRE at {cycle} violates tRAS/tRTP/tWR (earliest "
                f"{self.next_precharge})"
            )
        t = self.timing
        self.open_row = None
        self.next_activate = max(self.next_activate, cycle + t.trp)

    def read(self, cycle: int, row: int) -> int:
        """Issue a READ; returns the cycle data transfer completes."""
        self._check_column(cycle, row, is_write=False)
        t = self.timing
        self.row_hits += 1
        self.next_read = cycle + t.tccd
        self.next_write = max(self.next_write, cycle + t.cl + t.burst_cycles + 2 - t.cwl)
        self.next_precharge = max(self.next_precharge, cycle + t.trtp)
        return cycle + t.cl + t.burst_cycles

    def write(self, cycle: int, row: int) -> int:
        """Issue a WRITE; returns the cycle the write is fully accepted."""
        self._check_column(cycle, row, is_write=True)
        t = self.timing
        self.row_hits += 1
        self.next_write = cycle + t.tccd
        self.next_read = max(self.next_read, cycle + t.cwl + t.burst_cycles + t.twtr)
        self.next_precharge = max(
            self.next_precharge, cycle + t.cwl + t.burst_cycles + t.twr
        )
        return cycle + t.cwl + t.burst_cycles

    def _check_column(self, cycle: int, row: int, is_write: bool) -> None:
        if self.open_row is None:
            raise RuntimeError("column command to a closed bank")
        if self.open_row != row:
            raise RuntimeError(
                f"column command to row {row} but open row is {self.open_row}"
            )
        earliest = self.earliest_column(is_write)
        if cycle < earliest:
            kind = "WR" if is_write else "RD"
            raise RuntimeError(f"{kind} at {cycle} violates timing (earliest {earliest})")

    # ------------------------------------------------------------------
    def block_until(self, cycle: int) -> None:
        """Push all earliest-issue clocks past ``cycle`` (refresh)."""
        self.next_activate = max(self.next_activate, cycle)
        self.next_precharge = max(self.next_precharge, cycle)
        self.next_read = max(self.next_read, cycle)
        self.next_write = max(self.next_write, cycle)
