"""IDD-current-based DDR4 power model (Micron power-calculator style).

The Fig. 14 energy model needs per-bit access energy and per-rank
background power.  Rather than bare constants, this module derives them
from datasheet IDD currents the way DRAM vendors specify power:

* activate/precharge energy: ``(IDD0 − IDD3N) · VDD · tRC`` per pair;
* read/write burst energy: ``(IDD4R/W − IDD3N) · VDD`` over the burst;
* background power: IDD2N (all banks precharged) / IDD3N (any bank
  open), plus the refresh average ``(IDD5B − IDD3N) · tRFC / tREFI``;
* on-DIMM I/O: a per-bit switching term (rank-local NMP avoids the
  channel DQ drivers, so this is small compared to host-side access).

Values default to an 8 Gb DDR4-2400 x8 device scaled to the 8-chip
rank.  ``derived_params()`` exports the aggregate coefficients in the
shape :class:`repro.energy.params.EnergyParams` consumes, and the
energy tests assert the two layers agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.dram.dram_system import DRAMStats
from repro.dram.timing import DDR4Timing, DDR4_2400
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DDR4PowerParams:
    """Datasheet currents (mA, per device) and voltage for one device."""

    vdd: float = 1.2
    idd0: float = 55.0  # one-bank ACT-PRE cycling
    idd2n: float = 34.0  # precharge standby
    idd3n: float = 44.0  # active standby
    idd4r: float = 150.0  # read burst
    idd4w: float = 145.0  # write burst
    idd5b: float = 195.0  # burst refresh
    io_pj_per_bit: float = 2.0  # on-DIMM termination/strobe energy
    devices_per_rank: int = 8

    def __post_init__(self) -> None:
        for name in ("vdd", "idd0", "idd2n", "idd3n", "idd4r", "idd5b"):
            check_positive(name, getattr(self, name))


class DRAMPowerModel:
    """Energy accounting over cycle-model statistics."""

    def __init__(
        self,
        timing: DDR4Timing = DDR4_2400,
        params: DDR4PowerParams = DDR4PowerParams(),
    ):
        self.timing = timing
        self.params = params

    # ------------------------------------------------------------------
    # per-event energies (joules, full rank)
    # ------------------------------------------------------------------
    @property
    def _tck(self) -> float:
        return 1.0 / self.timing.clock_hz

    @property
    def activate_energy(self) -> float:
        """One ACT/PRE pair across the rank."""
        p = self.params
        device = (p.idd0 - p.idd3n) * 1e-3 * p.vdd * self.timing.trc * self._tck
        return device * p.devices_per_rank

    @property
    def read_burst_energy(self) -> float:
        """One BL8 read burst across the rank, incl. on-DIMM I/O."""
        p = self.params
        cycles = self.timing.burst_cycles
        device = (p.idd4r - p.idd3n) * 1e-3 * p.vdd * cycles * self._tck
        array = device * p.devices_per_rank
        io = self.timing.burst_bytes * 8 * p.io_pj_per_bit * 1e-12
        return array + io

    @property
    def write_burst_energy(self) -> float:
        p = self.params
        cycles = self.timing.burst_cycles
        device = (p.idd4w - p.idd3n) * 1e-3 * p.vdd * cycles * self._tck
        array = device * p.devices_per_rank
        io = self.timing.burst_bytes * 8 * p.io_pj_per_bit * 1e-12
        return array + io

    @property
    def background_watts(self) -> float:
        """Average standby power per rank (mix of active/precharged
        standby plus the refresh average)."""
        p = self.params
        standby = 0.5 * (p.idd2n + p.idd3n) * 1e-3 * p.vdd * p.devices_per_rank
        refresh = (
            (p.idd5b - p.idd3n) * 1e-3 * p.vdd
            * (self.timing.trfc / self.timing.trefi)
            * p.devices_per_rank
        )
        return standby + refresh

    # ------------------------------------------------------------------
    def energy_of(self, stats: DRAMStats) -> Dict[str, float]:
        """Energy breakdown (joules) of one cycle-model run (per rank
        population that the stats cover)."""
        background = self.background_watts * stats.seconds
        return {
            "activate": stats.activations * self.activate_energy,
            "read": stats.reads * self.read_burst_energy,
            "write": stats.writes * self.write_burst_energy,
            "background": background,
        }

    def total_energy(self, stats: DRAMStats) -> float:
        return sum(self.energy_of(stats).values())

    # ------------------------------------------------------------------
    def derived_params(self) -> Dict[str, float]:
        """The aggregate coefficients the Fig. 14 energy layer uses.

        * ``dram_pj_per_bit`` — read burst energy over its bits;
        * ``dram_activate_nj`` — one rank ACT/PRE pair;
        * ``dram_static_watts_per_rank`` — background power.
        """
        bits = self.timing.burst_bytes * 8
        return {
            "dram_pj_per_bit": self.read_burst_energy / bits * 1e12,
            "dram_activate_nj": self.activate_energy * 1e9,
            "dram_static_watts_per_rank": self.background_watts,
        }
