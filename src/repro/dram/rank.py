"""Rank-level constraints: tRRD, the four-activate window, refresh."""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.dram.bank import Bank
from repro.dram.timing import DDR4Timing


class Rank:
    """A rank: a set of banks sharing activate-rate limits.

    The rank enforces tRRD (minimum gap between ACTs to any two banks)
    and tFAW (at most four ACTs per rolling window), and performs
    all-bank refresh every tREFI.
    """

    def __init__(self, timing: DDR4Timing):
        self.timing = timing
        self.banks: List[Bank] = [Bank(timing) for _ in range(timing.banks_per_rank)]
        self._act_history: Deque[int] = deque(maxlen=4)
        self._last_act = -(10**9)
        self._last_column = -(10**9)
        self._last_column_group = -1
        self._next_refresh = timing.trefi
        self.refreshes = 0

    # ------------------------------------------------------------------
    def earliest_activate(self, bank_index: int) -> int:
        """Earliest cycle an ACT to ``bank_index`` satisfies bank + rank limits."""
        earliest = self.banks[bank_index].earliest_activate()
        earliest = max(earliest, self._last_act + self.timing.trrd)
        if len(self._act_history) == 4:
            earliest = max(earliest, self._act_history[0] + self.timing.tfaw)
        return earliest

    def activate(self, cycle: int, bank_index: int, row: int) -> None:
        if cycle < self.earliest_activate(bank_index):
            raise RuntimeError(
                f"rank ACT at {cycle} violates tRRD/tFAW (earliest "
                f"{self.earliest_activate(bank_index)})"
            )
        self.banks[bank_index].activate(cycle, row)
        self._act_history.append(cycle)
        self._last_act = cycle

    # ------------------------------------------------------------------
    def earliest_column_for_group(self, bank_group: int) -> int:
        """Earliest cycle a column command to ``bank_group`` satisfies
        the bank-group constraint: tCCD_L within the group that issued
        the previous column command, tCCD_S across groups."""
        gap = (
            self.timing.tccd_l
            if bank_group == self._last_column_group
            else self.timing.tccd
        )
        return self._last_column + gap

    def record_column(self, cycle: int, bank_group: int) -> None:
        """Note a column command for bank-group timing tracking."""
        self._last_column = cycle
        self._last_column_group = bank_group

    # ------------------------------------------------------------------
    def maybe_refresh(self, cycle: int) -> int:
        """Perform refresh if due; returns the cycle the rank is usable.

        The controller calls this before scheduling; a due refresh
        closes all rows and blocks the rank for tRFC.
        """
        if cycle < self._next_refresh:
            return cycle
        # Close any open rows (auto-precharge semantics of REF).
        done = cycle + self.timing.trfc
        for bank in self.banks:
            bank.open_row = None
            bank.block_until(done)
        self._next_refresh += self.timing.trefi
        self.refreshes += 1
        return done

    # ------------------------------------------------------------------
    @property
    def total_activations(self) -> int:
        return sum(bank.activations for bank in self.banks)

    @property
    def total_row_hits(self) -> int:
        return sum(bank.row_hits for bank in self.banks)
