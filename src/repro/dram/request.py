"""Memory requests flowing into the DRAM model."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.dram.address import DecodedAddress


class RequestType(enum.Enum):
    READ = "read"
    WRITE = "write"


_request_ids = itertools.count()


@dataclass
class Request:
    """One burst-sized (64 B) memory request.

    ``arrival`` is the cycle the request enters the controller queue;
    ``completed_at`` is filled by the scheduler when data is returned
    (READ) or accepted (WRITE).
    """

    type: RequestType
    address: DecodedAddress
    arrival: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))
    completed_at: Optional[int] = None

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    @property
    def latency(self) -> int:
        if self.completed_at is None:
            raise ValueError("request not completed yet")
        return self.completed_at - self.arrival
