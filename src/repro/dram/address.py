"""Physical-address decomposition.

The mapping interleaves channels first, then *bank groups*, then
columns: consecutive cache lines alternate bank groups so back-to-back
column commands pay DDR4's fast tCCD_S rather than the slow same-group
tCCD_L — the standard controller trick bank groups exist for.  Within
each bank group a stream still walks one open row (row-buffer
locality), so sequential streams get both full column rate and high
row-hit rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import DDR4Timing
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DecodedAddress:
    """Coordinates of one 64-byte burst in the memory system."""

    channel: int
    rank: int
    bank_group: int
    bank: int
    row: int
    column: int

    @property
    def flat_bank(self) -> int:
        """Bank index flattened across groups (for per-rank arrays)."""
        return self.bank_group * 4 + self.bank


class AddressMapping:
    """Decode linear physical addresses to DRAM coordinates."""

    def __init__(
        self,
        timing: DDR4Timing,
        channels: int = 8,
        ranks_per_channel: int = 8,
    ):
        check_positive("channels", channels)
        check_positive("ranks_per_channel", ranks_per_channel)
        self.timing = timing
        self.channels = channels
        self.ranks_per_channel = ranks_per_channel
        self.line_bytes = timing.burst_bytes
        #: Bursts per row (column granularity is one burst).
        self.bursts_per_row = timing.row_bytes // self.line_bytes

    @property
    def capacity_bytes(self) -> int:
        rows = self.timing.rows_per_bank
        banks = self.timing.banks_per_rank
        return (
            self.channels
            * self.ranks_per_channel
            * banks
            * rows
            * self.timing.row_bytes
        )

    def decode(self, address: int) -> DecodedAddress:
        """Split ``address`` (bytes) into DRAM coordinates."""
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        line = address // self.line_bytes
        line, channel = divmod(line, self.channels)
        line, bank_group = divmod(line, self.timing.bank_groups)
        line, column = divmod(line, self.bursts_per_row)
        line, bank = divmod(line, 4)
        line, rank = divmod(line, self.ranks_per_channel)
        row = line % self.timing.rows_per_bank
        return DecodedAddress(
            channel=channel,
            rank=rank,
            bank_group=bank_group,
            bank=bank,
            row=row,
            column=column,
        )

    def sequential_addresses(self, start: int, num_bytes: int) -> list:
        """Burst-aligned addresses covering ``[start, start+num_bytes)``."""
        check_positive("num_bytes", num_bytes)
        first = (start // self.line_bytes) * self.line_bytes
        last = start + num_bytes
        return list(range(first, last, self.line_bytes))
