"""Calibrated synthetic extreme-classification tasks.

A :class:`SyntheticTask` bundles a structured classifier with a feature
sampler so experiments can measure screening quality the way the paper
does (exact vs. screened predictions on the same inputs).

Why structure matters: approximate screening projects ``h`` to ``k ≪ d``
dimensions and regresses the full logits from there.  That succeeds on
real models because the *discriminative* directions of ``W`` span a
low-dimensional subspace (class taxonomies, word embeddings trained
jointly).  A classifier with i.i.d. Gaussian rows has no such subspace
and no screener of any kind can compress it — which is also true of the
paper's baselines (SVD-softmax explicitly requires approximate low
rank).  The generator therefore builds

    W = U · diag(s) · V^T + ε·N      (power-law spectrum s)
    b = Zipfian log-prior

and samples features as noisy combinations of their true category's
weight row plus subspace noise, yielding the top-heavy softmax outputs
real LM/NMT/recommendation models produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.classifier import FullClassifier
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SyntheticTaskConfig:
    """Geometry of a synthetic XC task.

    Parameters
    ----------
    num_categories, hidden_dim:
        The classifier shape ``(l, d)``.
    effective_rank:
        Number of dominant singular directions in ``W``; real XC
        classifiers concentrate most energy in a small fraction of
        ``d``.
    spectrum_decay:
        Power-law exponent of the singular values ``s_i ∝ i^-decay``.
    weight_noise:
        Relative scale of the full-rank Gaussian residual added to the
        low-rank core.
    zipf_exponent:
        Exponent of the category prior (1.0 ≈ natural language).
    signal_to_noise:
        How strongly a feature aligns with its true category's weight
        row; larger values give sharper softmax outputs.
    normalization:
        ``"softmax"`` (LM/NMT) or ``"sigmoid"`` (multi-label).
    labels_per_sample:
        For sigmoid tasks, how many positive labels each sample has.
    """

    num_categories: int
    hidden_dim: int
    effective_rank: int = 32
    spectrum_decay: float = 1.0
    weight_noise: float = 0.05
    zipf_exponent: float = 1.0
    signal_to_noise: float = 3.0
    normalization: str = "softmax"
    labels_per_sample: int = 1

    def __post_init__(self) -> None:
        check_positive("num_categories", self.num_categories)
        check_positive("hidden_dim", self.hidden_dim)
        check_positive("effective_rank", self.effective_rank)
        check_positive("labels_per_sample", self.labels_per_sample)
        if self.effective_rank > self.hidden_dim:
            raise ValueError(
                f"effective_rank {self.effective_rank} exceeds hidden_dim "
                f"{self.hidden_dim}"
            )


def _zipf_log_prior(num_categories: int, exponent: float) -> np.ndarray:
    """Log of a (normalized) Zipf distribution over category ranks."""
    ranks = np.arange(1, num_categories + 1, dtype=np.float64)
    weights = ranks**-exponent
    return np.log(weights / weights.sum())


def _orthonormal(rows: int, cols: int, rng: np.random.Generator) -> np.ndarray:
    """A rows×cols matrix with orthonormal columns (rows >= cols)."""
    gaussian = rng.standard_normal((rows, cols))
    q, _ = np.linalg.qr(gaussian)
    return q[:, :cols]


class SyntheticTask:
    """A structured classifier plus matched feature/label samplers."""

    def __init__(self, config: SyntheticTaskConfig, rng: RngLike = None):
        self.config = config
        generator = ensure_rng(rng)

        l, d, r = config.num_categories, config.hidden_dim, config.effective_rank
        left = generator.standard_normal((l, r)) / np.sqrt(r)
        right = _orthonormal(d, r, generator)
        spectrum = np.arange(1, r + 1, dtype=np.float64) ** -config.spectrum_decay
        core = (left * spectrum) @ right.T
        noise = generator.standard_normal((l, d)) / np.sqrt(d)
        weight = core + config.weight_noise * noise

        log_prior = _zipf_log_prior(l, config.zipf_exponent)
        # Center the prior so biases stay O(1); softmax is shift-invariant.
        bias = log_prior - log_prior.mean()

        self.classifier = FullClassifier(
            weight, bias, normalization=config.normalization
        )
        self._subspace = right  # (d, r) discriminative subspace
        self._prior = np.exp(log_prior)
        self._rng = generator

    # ------------------------------------------------------------------
    @property
    def num_categories(self) -> int:
        return self.config.num_categories

    @property
    def hidden_dim(self) -> int:
        return self.config.hidden_dim

    # ------------------------------------------------------------------
    def sample_labels(self, count: int, rng: RngLike = None) -> np.ndarray:
        """Draw category labels from the Zipfian prior."""
        check_positive("count", count)
        generator = ensure_rng(rng) if rng is not None else self._rng
        return generator.choice(self.num_categories, size=count, p=self._prior)

    def features_for_labels(
        self, labels: np.ndarray, rng: RngLike = None
    ) -> np.ndarray:
        """Hidden vectors aligned with each label's weight row.

        ``h = snr · ŵ_y + subspace noise + isotropic noise``, normalized
        to unit RMS per dimension so quantization scales are stable.
        """
        generator = ensure_rng(rng) if rng is not None else self._rng
        labels = np.asarray(labels, dtype=np.intp)
        rows = self.classifier.weight[labels]
        norms = np.linalg.norm(rows, axis=1, keepdims=True)
        norms = np.where(norms > 0, norms, 1.0)
        aligned = rows / norms

        r = self.config.effective_rank
        sub_noise = (
            generator.standard_normal((labels.size, r)) @ self._subspace.T
        ) / np.sqrt(r)
        iso_noise = generator.standard_normal((labels.size, self.hidden_dim))
        iso_noise /= np.sqrt(self.hidden_dim)

        features = (
            self.config.signal_to_noise * aligned + sub_noise + 0.3 * iso_noise
        )
        rms = np.sqrt(np.mean(features**2, axis=1, keepdims=True))
        return features / rms

    def sample(
        self, count: int, rng: RngLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(features, labels)`` for ``count`` samples.

        For sigmoid (multi-label) tasks, ``labels`` has shape
        ``(count, labels_per_sample)``; the feature is aligned with the
        mean of its positive labels' weight rows.
        """
        generator = ensure_rng(rng) if rng is not None else self._rng
        if self.config.normalization == "sigmoid" and self.config.labels_per_sample > 1:
            labels = np.stack(
                [self.sample_labels(count, generator) for _ in range(self.config.labels_per_sample)],
                axis=1,
            )
            features = np.mean(
                np.stack(
                    [self.features_for_labels(labels[:, j], generator)
                     for j in range(labels.shape[1])],
                    axis=0,
                ),
                axis=0,
            )
            return features, labels
        labels = self.sample_labels(count, generator)
        return self.features_for_labels(labels, generator), labels

    def sample_features(self, count: int, rng: RngLike = None) -> np.ndarray:
        """Features only (distillation training does not need labels)."""
        features, _ = self.sample(count, rng=rng)
        return features


def make_task(
    num_categories: int,
    hidden_dim: int,
    rng: RngLike = None,
    **overrides,
) -> SyntheticTask:
    """Convenience constructor with sensible structural defaults.

    The effective rank defaults to ``min(d/4, 64)``, a regime in which
    both our screener and the SVD baseline have signal to exploit, as on
    real models.
    """
    defaults = dict(
        effective_rank=max(4, min(hidden_dim // 4, 64)),
    )
    defaults.update(overrides)
    config = SyntheticTaskConfig(
        num_categories=num_categories, hidden_dim=hidden_dim, **defaults
    )
    return SyntheticTask(config, rng=rng)
