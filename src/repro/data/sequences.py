"""Synthetic token *sequences* with context-dependent structure.

The basic :class:`~repro.data.synthetic.SyntheticTask` samples i.i.d.
(feature, label) pairs, which suffices for candidate-recall and
relative-quality measurements.  Language modeling, however, consumes
*sequences*: the hidden vector at step ``t`` depends on the history,
and perplexity is measured over a corpus.  This module adds that layer:

* a first-order Markov transition structure over the category space
  (topic-ish clusters: tokens prefer successors from their own cluster,
  with Zipfian resets), and
* a feature process where ``h_t`` blends the new token's discriminative
  direction with an exponentially decayed history — mimicking what a
  recurrent front-end's state looks like.

The result: a corpus whose exact-classifier perplexity is well below
the unigram baseline (context genuinely helps), so screened-vs-exact
perplexity comparisons exercise realistic score distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.data.synthetic import SyntheticTask
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SequenceConfig:
    """Markov/corpus structure parameters."""

    num_clusters: int = 32
    #: Probability of staying within the current token's cluster.
    cluster_stickiness: float = 0.8
    #: Feature-state decay per step (0 = memoryless, →1 = long memory).
    state_decay: float = 0.5

    def __post_init__(self) -> None:
        check_positive("num_clusters", self.num_clusters)
        if not 0.0 <= self.cluster_stickiness <= 1.0:
            raise ValueError(
                f"cluster_stickiness must be in [0, 1], got "
                f"{self.cluster_stickiness}"
            )
        if not 0.0 <= self.state_decay < 1.0:
            raise ValueError(
                f"state_decay must be in [0, 1), got {self.state_decay}"
            )


class SyntheticCorpus:
    """Sequences over a :class:`SyntheticTask`'s category space."""

    def __init__(
        self,
        task: SyntheticTask,
        config: SequenceConfig = SequenceConfig(),
        rng: RngLike = None,
    ):
        self.task = task
        self.config = config
        self._rng = ensure_rng(rng)
        l = task.num_categories
        clusters = min(config.num_clusters, l)
        # Cluster assignment by contiguous Zipf-rank blocks: head tokens
        # share clusters, like frequent words sharing syntactic roles.
        self._cluster_of = np.minimum(
            np.arange(l) * clusters // l, clusters - 1
        )
        self._members = [
            np.flatnonzero(self._cluster_of == c) for c in range(clusters)
        ]
        self._prior = task._prior

    @property
    def num_categories(self) -> int:
        return self.task.num_categories

    # ------------------------------------------------------------------
    def _next_token(self, current: int, rng: np.random.Generator) -> int:
        """Markov step: stay in-cluster with the configured stickiness,
        otherwise resample from the global Zipf prior."""
        if rng.random() < self.config.cluster_stickiness:
            members = self._members[self._cluster_of[current]]
            weights = self._prior[members]
            return int(rng.choice(members, p=weights / weights.sum()))
        return int(rng.choice(self.num_categories, p=self._prior))

    def sample_sequences(
        self, count: int, length: int, rng: RngLike = None
    ) -> np.ndarray:
        """``(count, length)`` token-id sequences."""
        check_positive("count", count)
        check_positive("length", length)
        generator = ensure_rng(rng) if rng is not None else self._rng
        sequences = np.empty((count, length), dtype=np.intp)
        for row in range(count):
            token = int(generator.choice(self.num_categories, p=self._prior))
            for t in range(length):
                sequences[row, t] = token
                token = self._next_token(token, generator)
        return sequences

    def features_for_sequences(
        self, sequences: np.ndarray, rng: RngLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-step prediction features and targets.

        The feature at step ``t`` (used to predict token ``t+1``) is the
        decayed history state after consuming tokens ``0..t``:

            s_t = decay · s_{t-1} + (1 − decay) · f(token_t)

        where ``f`` is the task's per-label discriminative feature.
        Returns ``(features (rows·(length−1), d), targets)`` flattened
        over all prediction positions.
        """
        generator = ensure_rng(rng) if rng is not None else self._rng
        sequences = np.atleast_2d(np.asarray(sequences, dtype=np.intp))
        rows, length = sequences.shape
        if length < 2:
            raise ValueError("sequences must have length >= 2 to predict")
        decay = self.config.state_decay

        features = []
        targets = []
        for row in range(rows):
            token_features = self.task.features_for_labels(
                sequences[row], rng=generator
            )
            state = np.zeros(self.task.hidden_dim)
            for t in range(length - 1):
                state = decay * state + (1.0 - decay) * token_features[t + 1]
                # Predicting token t+1 from history 0..t: the blended
                # state leans toward the *upcoming* token (as a trained
                # recurrent model's state does) plus residual history.
                features.append(state.copy())
                targets.append(sequences[row, t + 1])
        return np.asarray(features), np.asarray(targets, dtype=np.intp)

    def evaluation_batch(
        self, num_sequences: int, length: int, rng: RngLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Convenience: sample sequences and return (features, targets)."""
        generator = ensure_rng(rng) if rng is not None else self._rng
        sequences = self.sample_sequences(num_sequences, length, generator)
        return self.features_for_sequences(sequences, generator)
