"""The paper's workload table (Table 2) plus the synthetic scaling set.

Every experiment refers to workloads by their paper abbreviation
(``LSTM-W33K``, ``Transformer-W268K``, ``GNMT-E32K``, ``XMLCNN-670K``)
or the synthetic scalability points (``S1M``, ``S10M``, ``S100M``,
Section 6.1).  Performance/energy models always use the *full* paper
category counts; accuracy experiments materialize matrices and accept a
``scale`` divisor (see :func:`scaled_task`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.data.synthetic import SyntheticTask, SyntheticTaskConfig
from repro.utils.rng import rng_from_labels
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Workload:
    """One row of the paper's Table 2 (or a synthetic scaling point)."""

    abbr: str
    application: str
    dataset: str
    dataset_type: str
    num_categories: int
    model: str
    model_type: str
    hidden_dim: int
    normalization: str = "softmax"
    #: Decode steps per inference for sequence tasks (amortizes the
    #: front-end over several classifier invocations).
    decode_steps: int = 1
    #: Candidate budget as a fraction of the category space, tuned so
    #: the end-task quality holds (Section 7.1): perplexity needs the
    #: whole distribution and hence a generous budget; top-k metrics
    #: (BLEU beams, P@k) tolerate aggressive screening — the paper
    #: "considerably reduces the number of candidates by 50×" for
    #: XMLCNN-670K.
    candidate_fraction: float = 0.05

    @property
    def classifier_bytes(self) -> int:
        """FP32 classifier footprint ``4·l·d`` (Fig. 5a)."""
        return 4 * self.num_categories * self.hidden_dim

    @property
    def default_candidates(self) -> int:
        """The tuned candidate budget ``m`` for this workload."""
        return max(1, int(round(self.num_categories * self.candidate_fraction)))


#: Table 2, in ascending classification size as Fig. 13 arranges them.
WORKLOADS: Dict[str, Workload] = {
    workload.abbr: workload
    for workload in [
        Workload(
            abbr="GNMT-E32K",
            application="NMT",
            dataset="WMT16 en-de",
            dataset_type="Translation",
            num_categories=32_317,
            model="GNMT",
            model_type="DNN",
            hidden_dim=1024,
            decode_steps=25,
            candidate_fraction=0.030,
        ),
        Workload(
            abbr="LSTM-W33K",
            application="NLP",
            dataset="Wikitext-2",
            dataset_type="Language Modeling",
            num_categories=33_278,
            model="LSTM",
            model_type="RNN",
            hidden_dim=1500,
            decode_steps=1,
            candidate_fraction=0.130,
        ),
        Workload(
            abbr="Transformer-W268K",
            application="NLP",
            dataset="Wikitext-103",
            dataset_type="Language Modeling",
            num_categories=267_744,
            model="Transformer",
            model_type="DNN",
            hidden_dim=512,
            decode_steps=1,
            candidate_fraction=0.120,
        ),
        Workload(
            abbr="XMLCNN-670K",
            application="Recommendation",
            dataset="Amazon-670k",
            dataset_type="Multi-label Classification",
            num_categories=670_091,
            model="XMLCNN",
            model_type="CNN",
            hidden_dim=512,
            normalization="sigmoid",
            candidate_fraction=0.020,
        ),
        # Synthetic scalability datasets (Section 6.1): same XMLCNN
        # front-end, scaled category space.
        Workload(
            abbr="S1M",
            application="Recommendation",
            dataset="Synthetic-1M",
            dataset_type="Multi-label Classification",
            num_categories=1_000_000,
            model="XMLCNN",
            model_type="CNN",
            hidden_dim=512,
            normalization="sigmoid",
            candidate_fraction=0.020,
        ),
        Workload(
            abbr="S10M",
            application="Recommendation",
            dataset="Synthetic-10M",
            dataset_type="Multi-label Classification",
            num_categories=10_000_000,
            model="XMLCNN",
            model_type="CNN",
            hidden_dim=512,
            normalization="sigmoid",
            candidate_fraction=0.020,
        ),
        Workload(
            abbr="S100M",
            application="Recommendation",
            dataset="Synthetic-100M",
            dataset_type="Multi-label Classification",
            num_categories=100_000_000,
            model="XMLCNN",
            model_type="CNN",
            hidden_dim=512,
            normalization="sigmoid",
            candidate_fraction=0.020,
        ),
    ]
}

#: The four evaluated applications of Table 2 (excludes scaling points).
TABLE2_ABBRS = ("GNMT-E32K", "LSTM-W33K", "Transformer-W268K", "XMLCNN-670K")
#: The Fig. 15 scalability sweep.
SCALABILITY_ABBRS = ("XMLCNN-670K", "S1M", "S10M", "S100M")


def get_workload(abbr: str) -> Workload:
    """Look up a workload by paper abbreviation."""
    try:
        return WORKLOADS[abbr]
    except KeyError:
        raise KeyError(
            f"unknown workload {abbr!r}; known: {sorted(WORKLOADS)}"
        ) from None


def iter_workloads(include_synthetic: bool = False) -> Iterator[Workload]:
    """Iterate Table 2 workloads, optionally with the synthetic set."""
    abbrs = WORKLOADS if include_synthetic else TABLE2_ABBRS
    for abbr in abbrs:
        yield WORKLOADS[abbr]


def scaled_task(
    workload: Workload,
    scale: int = 16,
    max_categories: Optional[int] = 65_536,
    rng=None,
) -> SyntheticTask:
    """Materialize a synthetic task for ``workload`` at reduced size.

    ``scale`` divides the category count (hidden dim is kept — it is
    what screening compresses); ``max_categories`` additionally caps the
    materialized label space so CI never allocates gigabytes.  The task
    is seeded from the workload name, so repeated calls in different
    processes produce identical matrices.
    """
    check_positive("scale", scale)
    num_categories = max(64, workload.num_categories // scale)
    if max_categories is not None:
        num_categories = min(num_categories, max_categories)
    config = SyntheticTaskConfig(
        num_categories=num_categories,
        hidden_dim=workload.hidden_dim,
        effective_rank=max(4, min(workload.hidden_dim // 4, 64)),
        normalization=workload.normalization,
        labels_per_sample=5 if workload.normalization == "sigmoid" else 1,
    )
    generator = rng if rng is not None else rng_from_labels(workload.abbr, scale)
    return SyntheticTask(config, rng=generator)
