"""Synthetic workload data calibrated to the paper's evaluation setup.

The paper evaluates on Wikitext-2/103 (LM), WMT16 en-de (NMT) and
Amazon-670K (recommendation) with pretrained PyTorch models.  Offline we
cannot ship those datasets or checkpoints, so this package generates
synthetic tasks whose *geometry* matches what makes screening work on
real models: classifier weight matrices with rapidly decaying spectra,
Zipfian category priors, and hidden vectors concentrated near the weight
rows of their true categories (so softmax outputs are top-heavy).
DESIGN.md §2 records the substitution argument.
"""

from repro.data.synthetic import SyntheticTask, SyntheticTaskConfig, make_task
from repro.data.sequences import SequenceConfig, SyntheticCorpus
from repro.data.registry import (
    WORKLOADS,
    Workload,
    get_workload,
    iter_workloads,
    scaled_task,
)

__all__ = [
    "SyntheticTask",
    "SyntheticTaskConfig",
    "make_task",
    "SyntheticCorpus",
    "SequenceConfig",
    "Workload",
    "WORKLOADS",
    "get_workload",
    "iter_workloads",
    "scaled_task",
]
