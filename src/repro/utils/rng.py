"""Deterministic random-number-generator helpers.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps
experiments reproducible and avoids the global numpy RNG.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a freshly seeded generator (seed 0, so library-level
    defaults are still deterministic), an ``int`` is used as a seed, and
    an existing generator is passed through unchanged.
    """
    if rng is None:
        return np.random.default_rng(0)
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    if isinstance(rng, np.random.Generator):
        return rng
    raise TypeError(f"expected None, int, or numpy Generator, got {type(rng)!r}")


def spawn_rngs(rng: RngLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Children are statistically independent regardless of how the parent
    is used afterwards, which makes parallel components (e.g. per-rank
    simulators) reproducible independently of execution order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def stable_seed(*parts: object) -> int:
    """Hash arbitrary labels into a stable 63-bit seed.

    Used by the workload registry so that e.g. the synthetic classifier
    for ``("XMLCNN-670K", "weights")`` is identical across processes.
    """
    import hashlib

    digest = hashlib.sha256("\x1f".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


def rng_from_labels(*parts: object) -> np.random.Generator:
    """A generator deterministically derived from string labels."""
    return np.random.default_rng(stable_seed(*parts))
