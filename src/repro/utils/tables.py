"""Minimal ASCII table rendering for experiment reports.

The experiment harness prints the same rows/series the paper reports;
this module provides the shared formatting so every figure/table module
emits a uniform, diff-friendly layout.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    formatted: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        formatted.append([_format_cell(cell, precision) for cell in row])

    widths = [max(len(r[i]) for r in formatted) for i in range(len(headers))]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    for idx, row in enumerate(formatted):
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if idx == 0:
            lines.append(sep)
    return "\n".join(lines)
