"""Process-level memory tuning for the serving hot path.

Screened inference materializes a ``(batch, l)`` score plane per batch
— 51 MB at ``l = 100K``, ``batch = 64`` in float64.  glibc's default
malloc serves blocks that large through ``mmap`` and returns them to
the OS the moment they are freed, so every batch re-faults (and the
kernel re-zeroes) the entire plane before a single MAC runs.  On the
reference machine that page-fault churn is ~3× the cost of the
screening GEMM itself.

:func:`configure_serving_allocator` raises glibc's mmap and trim
thresholds so freed planes stay in the process heap and are recycled
by the next batch.  This is the standard HPC/numerics tuning usually
applied via ``MALLOC_MMAP_MAX_``/``MALLOC_TRIM_THRESHOLD_`` environment
variables; doing it in-process keeps the serving entry point
self-contained.
"""

from __future__ import annotations

import ctypes

# glibc mallopt parameter numbers (malloc.h).
_M_TRIM_THRESHOLD = -1
_M_MMAP_THRESHOLD = -3


def configure_serving_allocator(threshold_bytes: int = 1 << 30) -> bool:
    """Keep allocations below ``threshold_bytes`` on the heap across frees.

    Returns ``True`` when the allocator accepted both tunings, ``False``
    on non-glibc platforms (the call is then a no-op — correctness never
    depends on it, only steady-state batch latency).
    """
    if not 0 < threshold_bytes < 2**31:
        raise ValueError(
            f"threshold_bytes must be a positive C int, got {threshold_bytes}"
        )
    try:
        libc = ctypes.CDLL("libc.so.6")
        accepted_mmap = libc.mallopt(_M_MMAP_THRESHOLD, threshold_bytes)
        accepted_trim = libc.mallopt(_M_TRIM_THRESHOLD, threshold_bytes)
    except OSError:
        return False
    return bool(accepted_mmap) and bool(accepted_trim)


def reset_default_allocator() -> bool:
    """Restore glibc's default dynamic thresholds (128 KB starting point).

    Used by benchmarks to time the pre-tuning configuration; glibc
    resumes adjusting the thresholds dynamically from these values.
    """
    try:
        libc = ctypes.CDLL("libc.so.6")
        accepted_mmap = libc.mallopt(_M_MMAP_THRESHOLD, 128 * 1024)
        accepted_trim = libc.mallopt(_M_TRIM_THRESHOLD, 128 * 1024)
    except OSError:
        return False
    return bool(accepted_mmap) and bool(accepted_trim)
