"""Process-level memory management for the serving hot path.

Two tools live here:

* :func:`configure_serving_allocator` / :func:`reset_default_allocator`
  — glibc allocator tuning so large freed planes are recycled instead
  of re-faulted (see below);
* :class:`Workspace` — a reusable scratch-buffer arena for the blocked
  streaming engine, so steady-state ``forward_streaming()`` performs
  zero new workspace allocations after warm-up.

Allocator tuning: screened inference materializes a ``(batch, l)``
score plane per batch — 51 MB at ``l = 100K``, ``batch = 64`` in
float64.  glibc's default malloc serves blocks that large through
``mmap`` and returns them to the OS the moment they are freed, so
every batch re-faults (and the kernel re-zeroes) the entire plane
before a single MAC runs.  On the reference machine that page-fault
churn is ~3× the cost of the screening GEMM itself.
:func:`configure_serving_allocator` raises glibc's mmap and trim
thresholds so freed planes stay in the process heap and are recycled
by the next batch.  This is the standard HPC/numerics tuning usually
applied via ``MALLOC_MMAP_MAX_``/``MALLOC_TRIM_THRESHOLD_`` environment
variables; doing it in-process keeps the serving entry point
self-contained.
"""

from __future__ import annotations

import ctypes
from typing import Dict, Tuple

import numpy as np

# glibc mallopt parameter numbers (malloc.h).
_M_TRIM_THRESHOLD = -1
_M_MMAP_THRESHOLD = -3


def configure_serving_allocator(threshold_bytes: int = 1 << 30) -> bool:
    """Keep allocations below ``threshold_bytes`` on the heap across frees.

    Returns ``True`` when the allocator accepted both tunings, ``False``
    on non-glibc platforms (the call is then a no-op — correctness never
    depends on it, only steady-state batch latency).
    """
    if not 0 < threshold_bytes < 2**31:
        raise ValueError(
            f"threshold_bytes must be a positive C int, got {threshold_bytes}"
        )
    try:
        libc = ctypes.CDLL("libc.so.6")
        accepted_mmap = libc.mallopt(_M_MMAP_THRESHOLD, threshold_bytes)
        accepted_trim = libc.mallopt(_M_TRIM_THRESHOLD, threshold_bytes)
    except OSError:
        return False
    return bool(accepted_mmap) and bool(accepted_trim)


class Workspace:
    """A keyed arena of reusable scratch buffers.

    The blocked streaming engine requests every recurring scratch array
    through a workspace instead of allocating fresh: each distinct
    ``(key, dtype)`` pair owns one flat slab that is grown to the
    largest size ever requested and then handed out as shaped views.
    After the first forward pass at a given batch shape (warm-up), no
    request grows a slab, so the steady-state hot path performs zero
    new workspace allocations — asserted in tests via the
    :attr:`allocations` counter.

    Contract
    --------
    * :meth:`buffer` returns an *uninitialized* view — the caller must
      fully overwrite it.  The view is only valid until the next
      :meth:`buffer`/:meth:`growable` call with the same key; callers
      must not hold two live views of one key.
    * :meth:`growable` returns the whole slab (capacity ≥ the request)
      and **preserves existing contents** across growth — it backs
      append-style accumulation where the caller tracks the fill count.
    * Growth never shrinks: slab capacity is the high-water mark of all
      requests, so a workspace's footprint is bounded by the largest
      batch shape it has served.
    * :attr:`allocations` counts slab (re)allocations and
      :attr:`requests` counts served requests; ``allocations`` staying
      flat while ``requests`` climbs is the steady-state guarantee.
    """

    def __init__(self) -> None:
        self._slabs: Dict[Tuple[object, np.dtype], np.ndarray] = {}
        self.allocations = 0
        self.requests = 0

    def _slab(self, key: object, size: int, dtype: np.dtype, preserve: bool) -> np.ndarray:
        slab_key = (key, np.dtype(dtype))
        slab = self._slabs.get(slab_key)
        if slab is None or slab.size < size:
            # Growable slabs double so append-style use amortizes; exact
            # sizing for plain buffers keeps shaped reuse tight.
            capacity = max(size, 2 * slab.size) if (slab is not None and preserve) else size
            grown = np.empty(capacity, dtype=dtype)
            if slab is not None and preserve:
                grown[: slab.size] = slab
            self._slabs[slab_key] = grown
            self.allocations += 1
            slab = grown
        return slab

    def buffer(self, key: object, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """An uninitialized C-contiguous array of ``shape`` under ``key``."""
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        self.requests += 1
        return self._slab(key, size, np.dtype(dtype), preserve=False)[:size].reshape(shape)

    def growable(self, key: object, capacity: int, dtype=np.float64) -> np.ndarray:
        """The full slab for ``key``, grown (contents preserved) to at
        least ``capacity`` elements."""
        self.requests += 1
        return self._slab(key, int(capacity), np.dtype(dtype), preserve=True)

    def release(self) -> None:
        """Drop every slab (footprint goes to zero).

        Serving backends call this from ``close()``.  The counters keep
        their history — a release followed by reuse shows up as new
        ``allocations``, which is exactly what the steady-state
        assertions should see.
        """
        self._slabs.clear()

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return sum(slab.nbytes for slab in self._slabs.values())

    def __repr__(self) -> str:
        return (
            f"Workspace(slabs={len(self._slabs)}, nbytes={self.nbytes}, "
            f"allocations={self.allocations}, requests={self.requests})"
        )


def reset_default_allocator() -> bool:
    """Restore glibc's default dynamic thresholds (128 KB starting point).

    Used by benchmarks to time the pre-tuning configuration; glibc
    resumes adjusting the thresholds dynamically from these values.
    """
    try:
        libc = ctypes.CDLL("libc.so.6")
        accepted_mmap = libc.mallopt(_M_MMAP_THRESHOLD, 128 * 1024)
        accepted_trim = libc.mallopt(_M_TRIM_THRESHOLD, 128 * 1024)
    except OSError:
        return False
    return bool(accepted_mmap) and bool(accepted_trim)
