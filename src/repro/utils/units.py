"""Unit conversions used across the performance and energy models."""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000

NANOSECOND = 1e-9
MICROSECOND = 1e-6
MILLISECOND = 1e-3


def bytes_to_mib(num_bytes: float) -> float:
    """Convert a byte count to mebibytes."""
    return num_bytes / MIB


def bytes_to_gib(num_bytes: float) -> float:
    """Convert a byte count to gibibytes."""
    return num_bytes / GIB


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Convert a cycle count at ``frequency_hz`` to wall-clock seconds."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float) -> int:
    """Convert seconds to a (ceiling) cycle count at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    cycles = seconds * frequency_hz
    # Tolerate float representation error (e.g. 7.5 ns × 400 MHz giving
    # 2.9999999999999996) before taking the ceiling.
    return int(-(-(cycles - 1e-9) // 1))


def ns_to_cycles(nanoseconds: float, frequency_hz: float) -> int:
    """Convert nanoseconds to a ceiling cycle count."""
    return seconds_to_cycles(nanoseconds * NANOSECOND, frequency_hz)


def gbps(bytes_per_second: float) -> float:
    """Express a byte rate in GB/s (decimal gigabytes, as DRAM vendors do)."""
    return bytes_per_second / GIGA
