"""ASCII charts for terminal experiment reports.

The benchmark harness prints the paper's series as tables; for the
figures whose *shape* is the claim (trade-off curves, scaling curves),
an inline chart makes the shape reviewable without plotting tools.
No external dependencies — pure text.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.utils.validation import check_positive

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line block-character series."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("no values")
    low, high = min(data), max(data)
    if math.isclose(low, high):
        return _BLOCKS[4] * len(data)
    scale = (len(_BLOCKS) - 2) / (high - low)
    return "".join(_BLOCKS[1 + int((v - low) * scale)] for v in data)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bars, labels left, values right."""
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels vs {len(values)} values")
    if not labels:
        raise ValueError("no data")
    check_positive("width", width)
    peak = max(float(v) for v in values)
    if peak <= 0:
        raise ValueError("bar chart needs a positive maximum")
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(width * float(value) / peak))
        bar = "█" * filled
        lines.append(
            f"{str(label).ljust(label_width)} |{bar.ljust(width)}| "
            f"{float(value):g}{unit}"
        )
    return "\n".join(lines)


def scatter(
    points: Sequence[Tuple[float, float]],
    width: int = 56,
    height: int = 14,
    markers: Optional[Sequence[str]] = None,
    log_x: bool = False,
) -> str:
    """A character-grid scatter plot (one marker per series point).

    ``markers`` assigns a character per point (e.g. per method in a
    trade-off plot); defaults to ``*``.
    """
    pts = [(float(x), float(y)) for x, y in points]
    if not pts:
        raise ValueError("no points")
    check_positive("width", width)
    check_positive("height", height)
    marks: List[str] = list(markers) if markers is not None else ["*"] * len(pts)
    if len(marks) != len(pts):
        raise ValueError(f"{len(marks)} markers vs {len(pts)} points")

    def tx(x: float) -> float:
        if not log_x:
            return x
        if x <= 0:
            raise ValueError("log_x requires positive x values")
        return math.log10(x)

    xs = [tx(x) for x, _ in pts]
    ys = [y for _, y in pts]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (x, y), mark in zip(zip(xs, ys), marks):
        col = int((x - x_low) / x_span * (width - 1))
        row = height - 1 - int((y - y_low) / y_span * (height - 1))
        grid[row][col] = mark[0]

    lines = ["".join(row).rstrip() for row in grid]
    frame = [f"{y_high:10.3g} ┤" + lines[0]]
    frame += ["           │" + line for line in lines[1:-1]]
    frame.append(f"{y_low:10.3g} ┤" + lines[-1])
    frame.append("           └" + "─" * width)
    frame.append(
        f"            {x_low if not log_x else 10**x_low:<10.3g}"
        + " " * max(0, width - 22)
        + f"{x_high if not log_x else 10**x_high:>10.3g}"
    )
    return "\n".join(frame)
