"""Deterministic fault injection for the parallel serving fleet.

Serving-grade fault tolerance cannot be tested with real OOM kills or
network partitions, so every failure path the engine handles is driven
through this harness instead: a :class:`FaultSpec` names a fault kind
and the exact serving request (1-based, per worker incarnation) it
fires on, and the worker entry point consults a :class:`FaultInjector`
built from its specs before serving each request.  Because the trigger
is a request *count* — never a clock or an RNG — the same spec produces
the same failure on every run, which is what lets the fault matrix in
``tests/test_fault_tolerance.py`` and ``bench_parallel.py --faults``
assert exact recovery behaviour.

Fault kinds
-----------
``kill``
    The worker process exits immediately with ``exitcode`` (no reply is
    sent) — the moral equivalent of an OOM kill or segfault mid-request.
``delay``
    The worker sleeps ``seconds`` before serving the request.  Chosen
    longer than the engine's request deadline, this reproduces the
    reply-desync scenario: the host times out, the answer lands late.
``wedge``
    The worker stops making progress (sleeps in a loop) — a deadlock or
    livelock.  It never answers again; only a kill + respawn recovers.
``raise``
    The request handler raises :class:`InjectedFault`; the worker
    itself survives (request-scoped application error).

Specs are plain frozen dataclasses, so they pickle into worker spawn
arguments under both ``fork`` and ``spawn``.  ``persistent=True`` makes
a spec survive respawn (the engine re-installs it in the replacement
worker) — that is how a restart-budget-exhaustion scenario is built.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

FAULT_KINDS = ("kill", "delay", "wedge", "raise")

#: One nap of the ``wedge`` loop; short enough that SIGTERM from the
#: supervisor's kill path interrupts promptly.
_WEDGE_NAP_S = 0.5


class InjectedFault(RuntimeError):
    """The exception a ``raise`` fault throws inside the request handler."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault on one worker.

    ``at_request`` is the 1-based index of the serving request (the
    ops that do real work — ``forward``, ``forward_streaming``,
    ``top_k``; control traffic does not advance the counter) within one
    worker incarnation.  Each spec fires at most once per incarnation.
    """

    kind: str
    at_request: int
    seconds: float = 0.0
    exitcode: int = 1
    persistent: bool = False

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.at_request < 1:
            raise ValueError(
                f"at_request is 1-based, got {self.at_request}"
            )
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")


class FaultInjector:
    """Counts serving requests and fires matching specs — worker side."""

    def __init__(self, specs: Optional[Sequence[FaultSpec]] = None):
        self.specs: List[FaultSpec] = list(specs or [])
        self.served = 0
        self._fired: set = set()

    def on_request(self) -> None:
        """Advance the request counter and trigger any due fault.

        Called once per serving request, *before* the request is
        handled, so a ``kill`` never replies and a ``delay`` delays the
        reply — exactly the externally observable failure shapes.
        """
        self.served += 1
        for index, spec in enumerate(self.specs):
            if index in self._fired or spec.at_request != self.served:
                continue
            self._fired.add(index)
            self._trigger(spec)

    def _trigger(self, spec: FaultSpec) -> None:
        if spec.kind == "kill":
            os._exit(spec.exitcode)
        if spec.kind == "delay":
            time.sleep(spec.seconds)
            return
        if spec.kind == "wedge":
            while True:
                time.sleep(_WEDGE_NAP_S)
        if spec.kind == "raise":
            raise InjectedFault(
                f"injected fault on request {self.served}"
            )


def surviving_specs(
    specs: Optional[Sequence[FaultSpec]],
) -> List[FaultSpec]:
    """The specs a *respawned* worker inherits (``persistent`` only)."""
    return [spec for spec in (specs or []) if spec.persistent]
