"""Shared argument-validation helpers.

Raising early with a precise message beats letting numpy broadcast its
way into a confusing downstream error.
"""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")


def check_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def check_batch_features(features: np.ndarray, hidden_dim: int) -> np.ndarray:
    """Validate and normalize a feature batch to shape ``(batch, hidden_dim)``.

    A single vector of shape ``(hidden_dim,)`` is promoted to a batch of 1.
    """
    array = np.asarray(features, dtype=np.float64)
    if array.ndim == 1:
        array = array[None, :]
    if array.ndim != 2:
        raise ValueError(f"features must be 1-D or 2-D, got shape {array.shape}")
    if array.shape[1] != hidden_dim:
        raise ValueError(
            f"features have hidden dim {array.shape[1]}, expected {hidden_dim}"
        )
    return array
