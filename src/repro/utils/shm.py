"""Zero-copy shared-memory array packs for the parallel serving engine.

A :class:`SharedArrayPack` lays several named numpy arrays out in one
``multiprocessing.shared_memory`` segment.  The host creates a pack from
in-process arrays (one copy, at pack time); workers attach by segment
name and get numpy *views* into the same physical pages — the shard's
``(W, b)`` and screener planes are never pickled and never duplicated
per process.

Only the :class:`PackLayout` (segment name + per-array shape/dtype/
offset) crosses the process boundary; it is a few hundred bytes of
plain-data metadata, so it can ride in the worker spawn arguments or a
request message.

Lifecycle protocol (Python 3.11 semantics — attaching registers the
segment with the shared ``resource_tracker``, so discipline matters):

* the **creating** process owns the segment and is the only one that
  calls :meth:`unlink`;
* **attaching** processes call :meth:`close` when done (worker exit);
* :meth:`close` drops the numpy views before closing the mapping, and
  tolerates stray exported buffers (``BufferError``) because
  :meth:`unlink` frees the pages regardless once every mapping is gone.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

#: Per-array alignment inside a segment; 64 bytes keeps every array on
#: its own cache line and satisfies any SIMD load the BLAS may issue.
_ALIGN = 64

#: Segments whose mapping could not be closed because a view escaped;
#: kept alive so SharedMemory.__del__ doesn't raise at GC time.
_UNCLOSEABLE: list = []


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one array inside a shared segment."""

    name: str
    shape: Tuple[int, ...]
    dtype: str
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class PackLayout:
    """Everything a process needs to attach a pack: picklable metadata."""

    segment: str
    specs: Tuple[ArraySpec, ...]
    size: int

    def spec(self, name: str) -> ArraySpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise KeyError(f"no array {name!r} in segment {self.segment}")


def plan_layout(arrays: Mapping[str, np.ndarray]) -> Tuple[Tuple[ArraySpec, ...], int]:
    """Assign aligned offsets for ``arrays``; returns specs + total bytes."""
    specs = []
    offset = 0
    for name, array in arrays.items():
        offset = _aligned(offset)
        specs.append(
            ArraySpec(
                name=name,
                shape=tuple(int(s) for s in array.shape),
                dtype=np.dtype(array.dtype).str,
                offset=offset,
            )
        )
        offset += array.nbytes
    return tuple(specs), max(offset, 1)


class SharedArrayPack:
    """Named numpy arrays backed by one shared-memory segment."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        layout: PackLayout,
        owner: bool,
    ):
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.layout = layout
        self.owner = owner
        self._unlinked = False
        self.arrays: Dict[str, np.ndarray] = {
            spec.name: np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=shm.buf,
                offset=spec.offset,
            )
            for spec in layout.specs
        }

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "SharedArrayPack":
        """Allocate a segment and copy ``arrays`` into it (the only copy)."""
        specs, size = plan_layout(arrays)
        shm = shared_memory.SharedMemory(create=True, size=size)
        layout = PackLayout(segment=shm.name, specs=specs, size=size)
        pack = cls(shm, layout, owner=True)
        for name, array in arrays.items():
            np.copyto(pack.arrays[name], array)
        return pack

    @classmethod
    def zeros(cls, arrays: Mapping[str, Tuple[Tuple[int, ...], object]]) -> "SharedArrayPack":
        """Allocate a zero-filled segment from ``{name: (shape, dtype)}``."""
        templates = {
            name: np.empty(shape, dtype=dtype)
            for name, (shape, dtype) in arrays.items()
        }
        specs, size = plan_layout(templates)
        shm = shared_memory.SharedMemory(create=True, size=size)
        layout = PackLayout(segment=shm.name, specs=specs, size=size)
        return cls(shm, layout, owner=True)

    @classmethod
    def attach(cls, layout: PackLayout) -> "SharedArrayPack":
        """Map an existing segment; arrays become zero-copy views."""
        try:
            shm = shared_memory.SharedMemory(name=layout.segment)
        except FileNotFoundError as error:
            # Keep the exception type (callers distinguish missing from
            # malformed) but say which pack vanished — the symptom of
            # attaching after the owner unlinked, e.g. a worker
            # respawned against a closed engine.
            raise FileNotFoundError(
                f"shared segment {layout.segment!r} no longer exists "
                "(owner unlinked it?)"
            ) from error
        if shm.size < layout.size:
            shm.close()
            raise ValueError(
                f"segment {layout.segment} holds {shm.size} bytes, layout "
                f"needs {layout.size}"
            )
        return cls(shm, layout, owner=False)

    @classmethod
    def exists(cls, layout: "PackLayout") -> bool:
        """Whether the segment behind ``layout`` is still linked.

        The supervision path probes this before respawning a worker: a
        vanished parameter segment means the engine was torn down
        concurrently and the shard is unrecoverable by construction.
        """
        try:
            handle = shared_memory.SharedMemory(name=layout.segment)
        except FileNotFoundError:
            return False
        handle.close()
        return True

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.layout.segment

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def unlink(self) -> None:
        """Remove the segment name (owner only); idempotent.

        Existing mappings — ours and any worker's — stay valid until
        they are closed; the kernel frees the pages when the last one
        goes away.  Call before or after :meth:`close`, it works either
        way.
        """
        if not self.owner or self._unlinked:
            return
        self._unlinked = True
        if self._shm is not None:
            self._shm.unlink()
        else:
            try:
                handle = shared_memory.SharedMemory(name=self.layout.segment)
            except FileNotFoundError:
                return
            handle.unlink()
            handle.close()

    def close(self) -> None:
        """Drop views and unmap.  Safe to call repeatedly."""
        self.arrays = {}
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:
                # A view escaped (e.g. user kept a logits slice).  Park
                # the handle so its __del__ doesn't re-raise; the
                # mapping lives until process exit, and unlink() still
                # frees the segment once every mapping is gone.
                _UNCLOSEABLE.append(self._shm)
            self._shm = None

    def destroy(self) -> None:
        """unlink() + close() — the owner's teardown."""
        self.unlink()
        self.close()

    def __enter__(self) -> "SharedArrayPack":
        return self

    def __exit__(self, *exc_info) -> None:
        self.destroy() if self.owner else self.close()
