"""Persistent worker processes with liveness supervision.

The parallel serving engine keeps one long-lived process per shard and
talks to it over a duplex pipe.  The failure mode that matters in
serving is a worker dying mid-request (OOM kill, segfault, operator
error): a bare ``Connection.recv()`` would block forever, because with
``fork`` sibling workers inherit each other's pipe write-ends and the
EOF never arrives.  :meth:`WorkerHandle.recv` therefore polls the pipe
*and* the process, so a dead worker surfaces as :class:`WorkerDied`
within one poll interval instead of a hang.
"""

from __future__ import annotations

import time
from typing import Any, Optional

import multiprocessing


class WorkerDied(RuntimeError):
    """A worker process exited while the host still needed it.

    Carries the worker's name and exit code (negative = killed by that
    signal number, ``None`` = still shutting down when observed).
    """

    def __init__(self, name: str, exitcode: Optional[int]):
        self.worker = name
        self.exitcode = exitcode
        super().__init__(
            f"worker {name!r} died with exit code {exitcode}; "
            "the serving engine has been shut down"
        )


class WorkerTimeout(RuntimeError):
    """A live worker failed to answer within the request timeout."""


class WorkerHandle:
    """One supervised worker process plus its command pipe."""

    def __init__(
        self,
        ctx,
        target,
        args: tuple,
        name: str,
        poll_interval: float = 0.02,
    ):
        self.name = name
        self.poll_interval = poll_interval
        host_conn, worker_conn = ctx.Pipe(duplex=True)
        self.connection = host_conn
        self.process = ctx.Process(
            target=target,
            args=(worker_conn, *args),
            name=name,
            daemon=True,
        )
        self.process.start()
        # Drop the host's copy of the worker end; the worker holds the
        # only live reference now.
        worker_conn.close()

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def send(self, message: Any) -> None:
        """Ship a request; a broken pipe means the worker is gone."""
        try:
            self.connection.send(message)
        except (BrokenPipeError, OSError) as error:
            raise WorkerDied(self.name, self.process.exitcode) from error

    def recv(self, timeout: Optional[float] = None) -> Any:
        """Wait for a reply, watching the process the whole time.

        Raises :class:`WorkerDied` if the process exits first (after
        draining any reply that raced with the death) and
        :class:`WorkerTimeout` if a live worker exceeds ``timeout``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self.connection.poll(self.poll_interval):
                try:
                    return self.connection.recv()
                except (EOFError, OSError) as error:
                    raise WorkerDied(self.name, self.process.exitcode) from error
            if not self.process.is_alive():
                # One last drain: the reply may have landed between the
                # poll above and the liveness check.
                if self.connection.poll(0):
                    try:
                        return self.connection.recv()
                    except (EOFError, OSError):
                        pass
                raise WorkerDied(self.name, self.process.exitcode)
            if deadline is not None and time.monotonic() > deadline:
                raise WorkerTimeout(
                    f"worker {self.name!r} gave no reply within {timeout}s"
                )

    def request(self, message: Any, timeout: Optional[float] = None) -> Any:
        self.send(message)
        return self.recv(timeout=timeout)

    # ------------------------------------------------------------------
    def stop(self, goodbye: Any = None, timeout: float = 2.0) -> None:
        """Shut the worker down: polite message first, SIGTERM after.

        Idempotent; never raises on an already-dead worker.
        """
        if self.process.is_alive() and goodbye is not None:
            try:
                self.connection.send(goodbye)
            except (BrokenPipeError, OSError):
                pass
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)
        try:
            self.connection.close()
        except OSError:
            pass
        # Release the process bookkeeping (Python >= 3.7).
        try:
            self.process.close()
        except ValueError:
            pass


def default_context() -> "multiprocessing.context.BaseContext":
    """The preferred start method for serving workers.

    ``fork`` starts in milliseconds and inherits ``sys.path``, which is
    what a serving host wants for per-model worker fleets; platforms
    without it (Windows, macOS defaults notwithstanding) fall back to
    ``spawn``.  Engines accept an explicit ``start_method`` to override.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")
