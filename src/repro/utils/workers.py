"""Persistent worker processes with liveness supervision.

The parallel serving engine keeps one long-lived process per shard and
talks to it over a duplex pipe.  Two failure modes matter in serving:

* a worker dying mid-request (OOM kill, segfault, operator error): a
  bare ``Connection.recv()`` would block forever, because with ``fork``
  sibling workers inherit each other's pipe write-ends and the EOF
  never arrives.  :meth:`WorkerHandle.recv_tagged` therefore polls the
  pipe *and* the process, so a dead worker surfaces as
  :class:`WorkerDied` within one poll interval instead of a hang;
* a worker answering *late*: if the host gives up on a request
  (:class:`WorkerTimeout`) the reply is still coming, and with an
  untagged pipe the next request on the same handle would receive the
  *previous* request's answer — a silent desync that poisons every
  reply after it.  Every message therefore carries a monotonically
  increasing request id; :meth:`WorkerHandle.recv_tagged` discards
  replies whose id predates the one it is waiting for, so a handle
  stays usable (and correct) after a timeout.

The wire protocol is ``(request_id, op, payload)`` host → worker and
``(request_id, kind, payload)`` worker → host.  Unsolicited messages
(the startup handshake) use :data:`HANDSHAKE_ID`.

Deadline semantics
------------------
``recv_tagged(..., timeout=t)`` promises a wait of **at most** ``t``
seconds (plus one recv): the remaining budget is checked *before*
every poll, each poll sleeps at most the remaining budget (clamped to
``poll_interval``), and a zero or already-expired budget raises
:class:`WorkerTimeout` immediately — it never pays a ``poll_interval``
it does not have.  This is what makes per-request SLO budgets
propagated by the serving front door (:mod:`repro.serving`) honest:
a request arriving with 1 ms of budget left costs ~1 ms, not 20 ms,
per hop.  ``timeout=None`` waits indefinitely (worker death is still
detected within one poll interval).

Protocol violations — a reply id *ahead* of the host's counter, which
only a host/worker code mismatch can produce — raise
:class:`ProtocolError` on every receive path, including the drain that
runs after a worker death is observed (a concurrent death must not
mask a mismatch), and are counted in ``workers.protocol_errors``.
"""

from __future__ import annotations

import time
from typing import Any, Optional, Tuple

import multiprocessing

from repro.obs.recorder import NULL_RECORDER

#: Request id of unsolicited worker → host messages (the startup
#: ready/fatal handshake).  Real requests count up from 1.
HANDSHAKE_ID = 0


class WorkerDied(RuntimeError):
    """A worker process exited while the host still needed it.

    Carries the worker's name and exit code (negative = killed by that
    signal number, ``None`` = still shutting down when observed).
    Also raised for any operation on a handle that was closed by
    :meth:`WorkerHandle.stop` — a stopped worker is indistinguishable
    from a dead one to callers, and must never surface as ``OSError``.
    """

    def __init__(self, name: str, exitcode: Optional[int]):
        self.worker = name
        self.exitcode = exitcode
        super().__init__(
            f"worker {name!r} died with exit code {exitcode}; "
            "the request cannot be answered by this handle"
        )


class WorkerTimeout(RuntimeError):
    """A live worker failed to answer within the request timeout.

    The handle remains usable: the late reply, if it ever arrives, is
    discarded by id on the next :meth:`WorkerHandle.recv_tagged`.
    """


class ProtocolError(RuntimeError):
    """The worker sent a reply from the future (id ahead of the host's
    counter) — only possible if host and worker code disagree."""


class WorkerHandle:
    """One supervised worker process plus its command pipe."""

    def __init__(
        self,
        ctx,
        target,
        args: tuple,
        name: str,
        poll_interval: float = 0.02,
        recorder=NULL_RECORDER,
    ):
        self.name = name
        self.poll_interval = poll_interval
        #: Observability sink for protocol events (``workers.*``
        #: counters); the no-op :data:`NULL_RECORDER` by default.
        self.recorder = recorder
        #: Replies discarded because their id predated the awaited one
        #: (observable evidence that a late reply arrived and was *not*
        #: misdelivered; the desync regression test asserts on it).
        self.stale_replies = 0
        self._closed = False
        self._request_id = HANDSHAKE_ID
        host_conn, worker_conn = ctx.Pipe(duplex=True)
        self.connection = host_conn
        self.process = ctx.Process(
            target=target,
            args=(worker_conn, *args),
            name=name,
            daemon=True,
        )
        self.process.start()
        # Drop the host's copy of the worker end; the worker holds the
        # only live reference now.
        worker_conn.close()

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return not self._closed and self.process.is_alive()

    @property
    def closed(self) -> bool:
        return self._closed

    def _died(self) -> WorkerDied:
        try:
            exitcode = self.process.exitcode
        except ValueError:  # process object already released by stop()
            exitcode = None
        return WorkerDied(self.name, exitcode)

    def _from_the_future(self, reply_id: int, expect_id: int) -> ProtocolError:
        """A reply id ahead of the host counter: host/worker mismatch."""
        self.recorder.increment("workers.protocol_errors")
        return ProtocolError(
            f"worker {self.name!r} answered request {reply_id} before it "
            f"was issued (awaiting {expect_id})"
        )

    def send(self, message: Any) -> None:
        """Ship a raw message; a closed handle or broken pipe means the
        worker is unreachable and raises :class:`WorkerDied`."""
        if self._closed:
            raise self._died()
        try:
            self.connection.send(message)
        except (BrokenPipeError, OSError) as error:
            raise self._died() from error

    def post(self, op: str, payload: Any = None) -> int:
        """Send one tagged request; returns its id for :meth:`recv_tagged`."""
        self._request_id += 1
        request_id = self._request_id
        self.send((request_id, op, payload))
        self.recorder.increment("workers.posted")
        return request_id

    def recv_tagged(
        self, expect_id: int, timeout: Optional[float] = None
    ) -> Tuple[str, Any]:
        """Wait for the reply tagged ``expect_id``, discarding stale ones.

        Watches the process the whole time: raises :class:`WorkerDied`
        if the process exits first (after draining any reply that raced
        with the death), :class:`WorkerTimeout` if a live worker
        exceeds ``timeout``, and :class:`WorkerDied` (never ``OSError``)
        if the handle is concurrently closed by :meth:`stop`.
        Replies with an id *older* than ``expect_id`` are late answers
        to requests the host already gave up on — they are counted in
        :attr:`stale_replies` and dropped, which is exactly what makes
        a post-timeout handle retry-safe.

        Liveness and the deadline are checked on **every** loop
        iteration, no matter how the poll branch exits.  (The earlier
        shape ``continue``-d straight back to the poll after draining a
        stale reply, so a worker streaming stale replies faster than
        ``poll_interval`` starved the timeout forever and a
        dead-but-draining pipe was never detected — the flood
        regression test in ``tests/test_workers_protocol.py`` pins
        this.)

        Deadline semantics (exact, relied on by deadline propagation in
        the serving front door): the remaining budget is checked
        *before* every poll and each poll waits at most the remaining
        budget, so the total wait never exceeds ``timeout`` by more
        than the cost of one recv.  A ``timeout`` of zero (or an
        already-spent budget) raises :class:`WorkerTimeout` immediately
        without paying a single ``poll_interval`` — an expired request
        is shed, never slept on.  (The earlier shape checked the
        deadline after a full-length poll with strict ``>``, so a
        zero-budget wait still cost up to ``poll_interval`` per hop.)
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._closed:
                raise self._died()
            wait = self.poll_interval
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    self.recorder.increment("workers.timeouts")
                    raise WorkerTimeout(
                        f"worker {self.name!r} gave no reply to request "
                        f"{expect_id} within {timeout}s"
                    )
                wait = min(wait, remaining)
            try:
                if self.connection.poll(wait):
                    reply_id, kind, payload = self.connection.recv()
                    if reply_id == expect_id:
                        return kind, payload
                    if reply_id > expect_id:
                        raise self._from_the_future(reply_id, expect_id)
                    # Stale reply: drop it and *fall through* — the
                    # liveness and deadline checks below must run even
                    # when stale replies arrive back to back.
                    self.stale_replies += 1
                    self.recorder.increment("workers.stale_replies")
            except (EOFError, BrokenPipeError) as error:
                self.recorder.increment("workers.deaths_observed")
                raise self._died() from error
            except OSError as error:
                # The connection vanished under the poll loop — either
                # stop() closed it from another thread or the pipe
                # broke; both mean "this worker is gone", never OSError.
                self.recorder.increment("workers.deaths_observed")
                raise self._died() from error
            if not self.process.is_alive():
                # One last drain: the reply may have landed between the
                # poll above and the liveness check.  The drain applies
                # the *same* protocol rules as the live loop — in
                # particular a reply from the future still raises
                # :class:`ProtocolError`.  (It used to be silently
                # swallowed here, so a host/worker code mismatch could
                # be masked by a concurrent death; the drain regression
                # test in ``tests/test_workers_protocol.py`` pins the
                # identical behaviour.)
                try:
                    while self.connection.poll(0):
                        reply_id, kind, payload = self.connection.recv()
                        if reply_id == expect_id:
                            return kind, payload
                        if reply_id > expect_id:
                            raise self._from_the_future(reply_id, expect_id)
                        self.stale_replies += 1
                        self.recorder.increment("workers.stale_replies")
                except (EOFError, OSError):
                    pass
                self.recorder.increment("workers.deaths_observed")
                raise self._died()

    def request(
        self, op: str, payload: Any = None, timeout: Optional[float] = None
    ) -> Tuple[str, Any]:
        """Tagged round trip: post the request, await exactly its reply."""
        return self.recv_tagged(self.post(op, payload), timeout=timeout)

    def handshake(self, timeout: Optional[float] = None) -> Tuple[str, Any]:
        """Await the worker's unsolicited startup message (ready/fatal)."""
        return self.recv_tagged(HANDSHAKE_ID, timeout=timeout)

    # ------------------------------------------------------------------
    def stop(self, goodbye: Any = None, timeout: float = 2.0) -> None:
        """Shut the worker down: polite message, SIGTERM, then SIGKILL.

        Idempotent; never raises on an already-dead worker.  Marks the
        handle closed *before* touching the connection, so a concurrent
        :meth:`recv_tagged` on another thread surfaces
        :class:`WorkerDied` instead of an ``OSError`` from the closed
        pipe.

        Escalation ladder: the goodbye message, a ``join(timeout)``,
        ``terminate()`` (SIGTERM) with a second join, and finally
        ``kill()`` (SIGKILL) with a last join.  A worker stuck in a
        SIGTERM-ignoring or uninterruptible state therefore cannot leak
        past shutdown — SIGKILL is not maskable.  (The earlier shape
        stopped at SIGTERM, so a signal-ignoring worker survived
        ``stop()``; the immortal-worker regression test pins the
        escalation.)
        """
        already_closed = self._closed
        self._closed = True
        if not already_closed and goodbye is not None:
            try:
                if self.process.is_alive():
                    self.connection.send((HANDSHAKE_ID, goodbye, None))
            except (BrokenPipeError, OSError, ValueError):
                pass
        try:
            self.process.join(timeout)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout)
        except ValueError:
            pass  # process object already released
        try:
            self.connection.close()
        except OSError:
            pass
        # Release the process bookkeeping (Python >= 3.7).
        try:
            self.process.close()
        except ValueError:
            pass


def default_context() -> "multiprocessing.context.BaseContext":
    """The preferred start method for serving workers.

    ``fork`` starts in milliseconds and inherits ``sys.path``, which is
    what a serving host wants for per-model worker fleets; platforms
    without it (Windows, macOS defaults notwithstanding) fall back to
    ``spawn``.  Engines accept an explicit ``start_method`` to override.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")
