"""Shared utilities: deterministic RNG handling, units, table rendering,
shared-memory array packs and supervised worker processes."""

from repro.utils.faults import FaultInjector, FaultSpec, InjectedFault
from repro.utils.memory import Workspace
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.shm import PackLayout, SharedArrayPack
from repro.utils.workers import (
    WorkerDied,
    WorkerHandle,
    WorkerTimeout,
    default_context,
)
from repro.utils.units import (
    GIB,
    KIB,
    MIB,
    bytes_to_gib,
    bytes_to_mib,
    cycles_to_seconds,
    seconds_to_cycles,
)
from repro.utils.tables import render_table
from repro.utils.validation import (
    check_batch_features,
    check_positive,
    check_probability,
)

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "Workspace",
    "ensure_rng",
    "spawn_rngs",
    "PackLayout",
    "SharedArrayPack",
    "WorkerDied",
    "WorkerHandle",
    "WorkerTimeout",
    "default_context",
    "KIB",
    "MIB",
    "GIB",
    "bytes_to_mib",
    "bytes_to_gib",
    "cycles_to_seconds",
    "seconds_to_cycles",
    "render_table",
    "check_positive",
    "check_probability",
    "check_batch_features",
]
