"""SVD-softmax (Shim et al., NeurIPS 2017).

Decompose the classifier weight ``W = U Σ V^T``.  At inference:

1. transform the hidden vector once: ``h' = Σ V^T h`` (a full ``d×d``
   transform — this is the fixed overhead the paper notes is ~4× our
   screening cost);
2. *preview*: compute partial inner products ``U[:, :w] · h'[:w]`` for
   every category using only the top-``w`` singular dimensions;
3. select the top-``N`` preview categories and recompute their full
   inner products ``U · h'`` (equivalently ``W h``) exactly;
4. outputs mix preview values (non-candidates) and exact values.

The structure mirrors approximate screening — preview, select,
refine — which is exactly why the paper uses it as the main baseline;
the difference is the preview basis (unsupervised SVD vs. learned
regression from a random projection) and the preview cost.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.candidates import CandidateSelector
from repro.core.classifier import FullClassifier
from repro.core.metrics import ClassificationCost
from repro.core.pipeline import ScreenedOutput
from repro.utils.validation import check_batch_features, check_positive


class SVDSoftmax:
    """Preview/refine softmax approximation via truncated SVD."""

    def __init__(
        self,
        classifier: FullClassifier,
        window: int = 32,
        num_candidates: int = 32,
        selector: Optional[CandidateSelector] = None,
    ):
        check_positive("window", window)
        if window > classifier.hidden_dim:
            raise ValueError(
                f"window {window} exceeds hidden dim {classifier.hidden_dim}"
            )
        self.classifier = classifier
        self.window = window
        self.selector = selector or CandidateSelector(
            mode="top_m", num_candidates=num_candidates
        )

        # Full (thin) SVD once, offline.  U: (l, d), sv: (d,), vt: (d, d).
        u, sv, vt = np.linalg.svd(classifier.weight, full_matrices=False)
        self._u = u
        self._sigma_vt = sv[:, None] * vt  # Σ V^T, applied to h once

    # ------------------------------------------------------------------
    @property
    def num_categories(self) -> int:
        return self.classifier.num_categories

    @property
    def hidden_dim(self) -> int:
        return self.classifier.hidden_dim

    # ------------------------------------------------------------------
    def preview_logits(self, features: np.ndarray) -> np.ndarray:
        """Step 1-2: the windowed preview scores for all categories."""
        batch = check_batch_features(features, self.hidden_dim)
        transformed = batch @ self._sigma_vt.T  # h' = Σ V^T h, (b, d)
        return (
            transformed[:, : self.window] @ self._u[:, : self.window].T
            + self.classifier.bias
        )

    def forward(self, features: np.ndarray) -> ScreenedOutput:
        """Preview → select → exact refine, mirroring the AS pipeline."""
        batch = check_batch_features(features, self.hidden_dim)
        preview = self.preview_logits(batch)
        candidates = self.selector.select(preview)

        mixed = preview.copy()
        for row, indices in enumerate(candidates):
            if indices.size == 0:
                continue
            mixed[row, indices] = self.classifier.logits_for(indices, batch[row])[0]
        return ScreenedOutput(
            logits=mixed, approximate_logits=preview, candidates=candidates
        )

    __call__ = forward

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(features).logits, axis=-1)

    # ------------------------------------------------------------------
    def cost(self, batch_size: int = 1) -> ClassificationCost:
        """Analytic per-batch cost (FP32 throughout — SVD-softmax has no
        quantized phase, one of its disadvantages in the paper)."""
        d, l, w = self.hidden_dim, self.num_categories, self.window
        m = self.selector.num_candidates
        transform_flops = 2.0 * batch_size * d * d
        preview_flops = 2.0 * batch_size * l * w
        refine_flops = 2.0 * batch_size * m * d
        preview_bytes = 4.0 * (d * d + l * w)
        refine_bytes = 4.0 * min(batch_size * m, l) * d
        return ClassificationCost(
            fp_flops=transform_flops + preview_flops + refine_flops,
            int_flops=0.0,
            fp_bytes=preview_bytes + refine_bytes,
            int_bytes=0.0,
        )

    def __repr__(self) -> str:
        return (
            f"SVDSoftmax(l={self.num_categories}, d={self.hidden_dim}, "
            f"window={self.window}, selector={self.selector!r})"
        )
