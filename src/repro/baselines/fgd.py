"""FGD: graph-based decoding (Zhang et al., NeurIPS 2018).

FGD ("Fast Graph Decoder") reduces softmax top-k inference to maximum
inner-product search over the classifier's weight vectors, answered with
a small-world graph: greedy best-first search walks a k-NN graph from an
entry point toward the query's nearest neighbors, evaluating only the
visited vertices.

We implement the inner-product-to-cosine transform of the original
paper (append ``sqrt(M² − ‖x‖²)`` so that cosine NN order equals
inner-product order), a degree-bounded k-NN graph built offline, and
beam search at inference.  The returned candidates get exact logits;
non-visited categories fall back to a low constant (FGD provides no
estimate for them — unlike screening, it cannot populate the tail,
which is why the paper's comparison runs at matched candidate budgets).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.candidates import CandidateSet
from repro.core.classifier import FullClassifier
from repro.core.metrics import ClassificationCost
from repro.core.pipeline import ScreenedOutput
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_batch_features, check_positive


def _build_knn_graph(
    vectors: np.ndarray, degree: int, rng: np.random.Generator, sample: int = 512
) -> np.ndarray:
    """Approximate k-NN graph by cosine similarity, degree-bounded.

    Exact all-pairs is O(l²); for large l we rank each vertex against a
    random sample plus its own block, which preserves the navigable
    small-world property FGD relies on while keeping construction
    tractable.  Returns an ``(l, degree)`` neighbor-index array.
    """
    count = vectors.shape[0]
    normalized = vectors / np.maximum(
        np.linalg.norm(vectors, axis=1, keepdims=True), 1e-12
    )
    neighbors = np.empty((count, degree), dtype=np.intp)
    exact_threshold = 4096
    if count <= exact_threshold:
        sims = normalized @ normalized.T
        np.fill_diagonal(sims, -np.inf)
        neighbors[:] = np.argpartition(sims, -degree, axis=1)[:, -degree:]
        return neighbors

    for start in range(0, count, 1024):
        block = normalized[start : start + 1024]
        candidates = rng.choice(count, size=min(sample, count), replace=False)
        sims = block @ normalized[candidates].T
        # Mask self-similarity where the sample contains the vertex itself.
        for local, vertex in enumerate(range(start, start + block.shape[0])):
            hits = np.flatnonzero(candidates == vertex)
            if hits.size:
                sims[local, hits] = -np.inf
        top = np.argpartition(sims, -degree, axis=1)[:, -degree:]
        neighbors[start : start + block.shape[0]] = candidates[top]
    return neighbors


class FGDClassifier:
    """Graph-based top-k decoding over classifier weights."""

    def __init__(
        self,
        classifier: FullClassifier,
        degree: int = 16,
        beam_width: int = 8,
        num_candidates: int = 32,
        max_hops: Optional[int] = None,
        rng: RngLike = None,
    ):
        check_positive("degree", degree)
        check_positive("beam_width", beam_width)
        check_positive("num_candidates", num_candidates)
        self.classifier = classifier
        self.degree = min(degree, classifier.num_categories - 1)
        self.beam_width = beam_width
        self.num_candidates = num_candidates
        self.max_hops = max_hops or max(
            8, int(2 * np.log2(classifier.num_categories + 1))
        )

        generator = ensure_rng(rng)
        # Inner-product → cosine transform: augment each weight row with
        # sqrt(M² − ‖w‖²); queries get a 0 in that coordinate, making
        # cosine order match inner-product order (bias folded in too).
        weight = classifier.weight
        augmented = np.hstack([weight, classifier.bias[:, None]])
        norms = np.linalg.norm(augmented, axis=1)
        max_norm = norms.max() if norms.size else 1.0
        pad = np.sqrt(np.maximum(max_norm**2 - norms**2, 0.0))
        self._points = np.hstack([augmented, pad[:, None]])
        self._graph = _build_knn_graph(self._points, self.degree, generator)
        # A well-connected entry point: the vertex with the largest norm
        # (head categories tend to be hubs).
        self._entry = int(np.argmax(norms))
        self._visited_counts: List[int] = []

    # ------------------------------------------------------------------
    @property
    def num_categories(self) -> int:
        return self.classifier.num_categories

    @property
    def hidden_dim(self) -> int:
        return self.classifier.hidden_dim

    # ------------------------------------------------------------------
    def _augment_query(self, feature: np.ndarray) -> np.ndarray:
        return np.concatenate([feature, [1.0], [0.0]])

    def _search(self, feature: np.ndarray) -> np.ndarray:
        """Greedy beam search; returns candidate indices (unsorted)."""
        query = self._augment_query(feature)
        scores = {}

        def score(vertex: int) -> float:
            if vertex not in scores:
                scores[vertex] = float(self._points[vertex] @ query)
            return scores[vertex]

        frontier = [self._entry]
        visited = {self._entry}
        best_score = score(self._entry)
        stale_rounds = 0
        for _ in range(self.max_hops):
            neighbors = set()
            for vertex in frontier:
                neighbors.update(self._graph[vertex].tolist())
            neighbors -= visited
            if not neighbors:
                break
            for vertex in neighbors:
                score(vertex)
            visited.update(neighbors)
            frontier = sorted(neighbors, key=score, reverse=True)[: self.beam_width]
            round_best = scores[frontier[0]]
            # Termination slack: stop after two rounds without improvement.
            if round_best <= best_score:
                stale_rounds += 1
                if stale_rounds >= 2:
                    break
            else:
                best_score = round_best
                stale_rounds = 0
        best = visited
        self._visited_counts.append(len(scores))
        ranked = sorted(best, key=score, reverse=True)
        return np.array(ranked[: self.num_candidates], dtype=np.intp)

    def forward(self, features: np.ndarray) -> ScreenedOutput:
        """Search per row; exact logits on candidates, floor elsewhere."""
        batch = check_batch_features(features, self.hidden_dim)
        indices = [self._search(row) for row in batch]
        candidates = CandidateSet(indices=indices)

        # FGD gives no tail estimate; fill with a floor well below any
        # candidate so softmax mass concentrates on the candidates.
        floor = -1e3
        mixed = np.full((batch.shape[0], self.num_categories), floor)
        for row, picked in enumerate(candidates):
            if picked.size == 0:
                continue
            mixed[row, picked] = self.classifier.logits_for(picked, batch[row])[0]
        return ScreenedOutput(
            logits=mixed, approximate_logits=np.full_like(mixed, floor),
            candidates=candidates,
        )

    __call__ = forward

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(features).logits, axis=-1)

    # ------------------------------------------------------------------
    @property
    def mean_visited(self) -> float:
        """Average vertices scored per query so far (the search cost)."""
        if not self._visited_counts:
            return 0.0
        return float(np.mean(self._visited_counts))

    def cost(self, batch_size: int = 1) -> ClassificationCost:
        """Measured per-batch cost from observed visit counts.

        Each visited vertex costs one (d+2)-dim inner product and one
        gathered weight row; graph adjacency reads are charged at 4
        bytes per edge.  Random-access gathers are the reason FGD maps
        poorly to streaming NMP hardware (paper Section 8).
        """
        visited = self.mean_visited if self._visited_counts else float(
            self.num_candidates * self.degree
        )
        dim = self.hidden_dim + 2
        flops = 2.0 * batch_size * visited * dim
        traffic = batch_size * visited * (4.0 * dim + 4.0 * self.degree)
        return ClassificationCost(
            fp_flops=flops, int_flops=0.0, fp_bytes=traffic, int_bytes=0.0
        )

    def __repr__(self) -> str:
        return (
            f"FGDClassifier(l={self.num_categories}, degree={self.degree}, "
            f"beam={self.beam_width}, m={self.num_candidates})"
        )
