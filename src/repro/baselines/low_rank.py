"""Plain truncated-SVD classifier (the naive low-rank strawman).

Approximates the whole classifier with rank ``r``:

    W ≈ (U_r Σ_r) (V_r^T),   z ≈ U_r Σ_r (V_r^T h) + b

with *no* exact refinement step.  Used as an ablation: it shows why
preview/refine structures (SVD-softmax, approximate screening) dominate
pure approximation at equal compute.
"""

from __future__ import annotations

import numpy as np

from repro.core.classifier import FullClassifier
from repro.core.metrics import ClassificationCost
from repro.linalg.functional import sigmoid, softmax
from repro.utils.validation import check_batch_features, check_positive


class LowRankClassifier:
    """Rank-``r`` approximation of a full classifier."""

    def __init__(self, classifier: FullClassifier, rank: int):
        check_positive("rank", rank)
        if rank > classifier.hidden_dim:
            raise ValueError(
                f"rank {rank} exceeds hidden dim {classifier.hidden_dim}"
            )
        self.classifier = classifier
        self.rank = rank
        u, sv, vt = np.linalg.svd(classifier.weight, full_matrices=False)
        self._left = u[:, :rank] * sv[:rank]  # (l, r)
        self._right = vt[:rank]  # (r, d)

    @property
    def num_categories(self) -> int:
        return self.classifier.num_categories

    @property
    def hidden_dim(self) -> int:
        return self.classifier.hidden_dim

    def logits(self, features: np.ndarray) -> np.ndarray:
        """Approximate scores for the whole category space."""
        batch = check_batch_features(features, self.hidden_dim)
        return (batch @ self._right.T) @ self._left.T + self.classifier.bias

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        scores = self.logits(features)
        if self.classifier.normalization == "sigmoid":
            return sigmoid(scores)
        return softmax(scores, axis=-1)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.logits(features), axis=-1)

    def reconstruction_error(self) -> float:
        """Relative Frobenius error of the rank-r weight approximation."""
        approx = self._left @ self._right
        return float(
            np.linalg.norm(self.classifier.weight - approx)
            / np.linalg.norm(self.classifier.weight)
        )

    def cost(self, batch_size: int = 1) -> ClassificationCost:
        """Per-batch cost: two skinny matmuls, FP32."""
        l, d, r = self.num_categories, self.hidden_dim, self.rank
        flops = 2.0 * batch_size * (r * d + l * r)
        traffic = 4.0 * (r * d + l * r)
        return ClassificationCost(
            fp_flops=flops, int_flops=0.0, fp_bytes=traffic, int_bytes=0.0
        )

    def __repr__(self) -> str:
        return f"LowRankClassifier(l={self.num_categories}, rank={self.rank})"
