"""Approximation baselines the paper compares against (Section 6.1).

* :class:`SVDSoftmax` — Shim et al., NeurIPS 2017: preview all
  categories through the top singular window, re-compute top-N exactly.
* :class:`FGDClassifier` — Zhang et al., NeurIPS 2018: graph-based
  nearest-neighbor decoding over the classifier weight vectors.
* :class:`LowRankClassifier` — plain truncated-SVD classifier, the
  "conventional low-rank approximation-based method" strawman.
"""

from repro.baselines.svd_softmax import SVDSoftmax
from repro.baselines.fgd import FGDClassifier
from repro.baselines.low_rank import LowRankClassifier

__all__ = ["SVDSoftmax", "FGDClassifier", "LowRankClassifier"]
