"""Energy, area and power models (paper Tables 4-5, Fig. 14)."""

from repro.energy.params import EnergyParams, DEFAULT_ENERGY_PARAMS
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.energy.area import (
    ENMC_AREA_POWER_BREAKDOWN,
    NMP_BUDGET_TABLE,
    enmc_totals,
    render_table4,
    render_table5,
)

__all__ = [
    "EnergyParams",
    "DEFAULT_ENERGY_PARAMS",
    "EnergyModel",
    "EnergyBreakdown",
    "ENMC_AREA_POWER_BREAKDOWN",
    "NMP_BUDGET_TABLE",
    "enmc_totals",
    "render_table4",
    "render_table5",
]
