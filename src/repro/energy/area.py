"""Area and power estimates (paper Tables 4 and 5).

These constants are the paper's synthesis results (Design Compiler,
TSMC 28 nm, 400 MHz); we encode them directly — they are inputs to the
architecture comparison, not outputs of a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.utils.tables import render_table


@dataclass(frozen=True)
class AreaPower:
    """One component's area (mm²) and power (mW)."""

    area_mm2: float
    power_mw: float


#: Table 5 — ENMC component breakdown.
ENMC_AREA_POWER_BREAKDOWN: Dict[str, AreaPower] = {
    "INT4 MAC": AreaPower(0.013, 10.4),
    "FP32 MAC": AreaPower(0.145, 58.0),
    "Compute Buffer": AreaPower(0.061, 56.8),
    "Control Buffer": AreaPower(0.053, 49.3),
    "ENMC Ctrl": AreaPower(0.035, 32.9),
    "DRAM Ctrl": AreaPower(0.135, 78.0),
}

#: Table 4 — baseline configurations at matched budget.
NMP_BUDGET_TABLE: Dict[str, Tuple[str, AreaPower]] = {
    "NDA": ("4*4 Functional Units + 1KB Memory", AreaPower(0.445, 293.6)),
    "Chameleon": ("4*4 Systolic Array + 1KB Memory", AreaPower(0.398, 249.0)),
    "TensorDIMM": ("16-lane VPU + 512B Queue * 3", AreaPower(0.457, 303.5)),
    "ENMC": ("FP32 * 16 + INT4 * 128 + 256B Buffer * 4", AreaPower(0.442, 285.4)),
}


def enmc_totals() -> AreaPower:
    """Summed Table 5 components (the paper's 0.442 mm² / 285.4 mW)."""
    area = sum(c.area_mm2 for c in ENMC_AREA_POWER_BREAKDOWN.values())
    power = sum(c.power_mw for c in ENMC_AREA_POWER_BREAKDOWN.values())
    return AreaPower(round(area, 3), round(power, 1))


def component_fractions() -> Dict[str, Tuple[float, float]]:
    """(area fraction, power fraction) per Table 5 component."""
    totals = enmc_totals()
    return {
        name: (c.area_mm2 / totals.area_mm2, c.power_mw / totals.power_mw)
        for name, c in ENMC_AREA_POWER_BREAKDOWN.items()
    }


def render_table5() -> str:
    """Table 5 as printed in the paper."""
    totals = enmc_totals()
    rows = [
        (name, c.area_mm2, c.power_mw)
        for name, c in ENMC_AREA_POWER_BREAKDOWN.items()
    ]
    rows.append(("Total", totals.area_mm2, totals.power_mw))
    return render_table(
        ["Component", "Area (mm^2)", "Power (mW)"], rows,
        title="Table 5: ENMC area and power estimation",
    )


def render_table4() -> str:
    """Table 4 as printed in the paper."""
    rows = [
        (name, config, ap.area_mm2, ap.power_mw)
        for name, (config, ap) in NMP_BUDGET_TABLE.items()
    ]
    return render_table(
        ["NMP Design", "Configuration", "Est. Area (mm^2)", "Est. Power (mW)"],
        rows,
        title="Table 4: NMP designs at matched area/power budget",
    )
