"""Energy coefficients (28 nm logic + DDR4 device energies).

The per-operation and per-bit values are standard figures for the
technology node (Horowitz ISSCC'14 scaling, DDR4 datasheet currents);
the logic power totals come from the paper's own synthesis results
(Table 4/5), so the Fig. 14 breakdown is anchored to published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class EnergyParams:
    """Coefficients for the three Fig. 14 energy pools."""

    # DRAM access: row activation amortized + column access + on-DIMM I/O.
    # Rank-local NMP avoids the channel I/O, hence lower than host-side.
    dram_pj_per_bit: float = 6.0
    dram_activate_nj: float = 1.5  # per row activation

    # DRAM background (static + refresh) per rank.
    dram_static_watts_per_rank: float = 0.125

    # Compute energies at 28 nm.
    int4_mac_pj: float = 0.1
    fp32_mac_pj: float = 3.7
    sfu_op_pj: float = 2.0

    # Control overhead: controller + DRAM-controller power applies
    # whenever the ENMC logic is active (Table 5: 32.9 + 78.0 mW).
    control_watts: float = 0.111

    def __post_init__(self) -> None:
        for name in ("dram_pj_per_bit", "dram_static_watts_per_rank",
                     "int4_mac_pj", "fp32_mac_pj"):
            check_positive(name, getattr(self, name))

    @classmethod
    def from_dram_power(cls, power_model, **overrides) -> "EnergyParams":
        """Derive the DRAM coefficients from an IDD-based power model
        (:class:`repro.dram.power.DRAMPowerModel`).

        The IDD derivation assumes no power-down modes, so its
        background power is the upper curve; the class defaults model a
        rank that enters power-down between accesses.
        """
        derived = power_model.derived_params()
        derived.update(overrides)
        return cls(**derived)


DEFAULT_ENERGY_PARAMS = EnergyParams()
