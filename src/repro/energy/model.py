"""Energy accounting over simulation results (Fig. 14's three pools).

Fig. 14 breaks energy into **DRAM static cost** (background + refresh
power integrated over execution time), **DRAM access** (per-bit access
plus per-activation energy), and **computation & control logic**
(MAC/SFU switching energy plus controller power over time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.params import EnergyParams, DEFAULT_ENERGY_PARAMS
from repro.enmc.simulator import SimulationResult
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules per batched inference, split by Fig. 14's categories."""

    dram_static: float
    dram_access: float
    compute_and_control: float

    @property
    def total(self) -> float:
        return self.dram_static + self.dram_access + self.compute_and_control

    def normalized_to(self, reference: "EnergyBreakdown") -> "EnergyBreakdown":
        """Each pool as a fraction of ``reference``'s total (the Fig. 14
        y-axis normalizes to TensorDIMM)."""
        if reference.total <= 0:
            raise ValueError("reference energy must be positive")
        return EnergyBreakdown(
            dram_static=self.dram_static / reference.total,
            dram_access=self.dram_access / reference.total,
            compute_and_control=self.compute_and_control / reference.total,
        )

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.dram_static + other.dram_static,
            self.dram_access + other.dram_access,
            self.compute_and_control + other.compute_and_control,
        )


class EnergyModel:
    """Turns a :class:`SimulationResult` into an energy breakdown."""

    def __init__(
        self,
        params: EnergyParams = DEFAULT_ENERGY_PARAMS,
        total_ranks: int = 64,
        logic_watts: float = 0.2854,  # Table 4: ENMC total power
        control_fraction: float = 0.42,  # Table 5: ctrl+DRAM ctrl share
    ):
        check_positive("total_ranks", total_ranks)
        check_positive("logic_watts", logic_watts)
        self.params = params
        self.total_ranks = total_ranks
        self.logic_watts = logic_watts
        self.control_fraction = control_fraction

    # ------------------------------------------------------------------
    def energy_of(
        self, result: SimulationResult, seconds: float = None
    ) -> EnergyBreakdown:
        """Energy of one batched inference.

        ``seconds`` defaults to the result's own (pipelined) latency;
        pass :attr:`SimulationResult.serialized_seconds` for designs
        without dual-module overlap.
        """
        params = self.params
        elapsed = result.seconds if seconds is None else seconds
        if elapsed < 0:
            raise ValueError(f"seconds must be non-negative, got {elapsed}")

        static = params.dram_static_watts_per_rank * self.total_ranks * elapsed

        total_bytes = (
            result.int_bytes_per_rank + result.fp_bytes_per_rank
        ) * self.total_ranks
        total_activations = result.activations_per_rank * self.total_ranks
        access = (
            total_bytes * 8 * params.dram_pj_per_bit * 1e-12
            + total_activations * params.dram_activate_nj * 1e-9
        )

        compute = (
            result.int_macs_per_rank * params.int4_mac_pj
            + result.fp_macs_per_rank * params.fp32_mac_pj
        ) * self.total_ranks * 1e-12
        # Control + datapath idle power integrated over the run.
        compute += self.logic_watts * self.control_fraction * self.total_ranks \
            * elapsed
        return EnergyBreakdown(
            dram_static=static,
            dram_access=access,
            compute_and_control=compute,
        )
