"""Performance models of the NMP baselines (paper Section 6.2, Table 4).

All baselines are rank-level NMP designs configured at the same area
and power budget as ENMC, and all run the approximate screening
*algorithm* — the comparison isolates the architecture.  What they lack
versus ENMC (Section 7.2):

* homogeneous FP32 datapaths — the INT4 screening phase runs on FP32
  units at FP32 throughput;
* no dual-module pipeline — screening and candidate phases serialize;
* small staging buffers — matrix-tile intermediates spill to DRAM.
"""

from repro.nmp.base import NMPBaselineModel
from repro.nmp.nda import NDA_MODEL
from repro.nmp.chameleon import CHAMELEON_MODEL
from repro.nmp.tensordimm import TENSORDIMM_LARGE_MODEL, TENSORDIMM_MODEL

__all__ = [
    "NMPBaselineModel",
    "NDA_MODEL",
    "CHAMELEON_MODEL",
    "TENSORDIMM_MODEL",
    "TENSORDIMM_LARGE_MODEL",
]
