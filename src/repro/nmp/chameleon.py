"""Chameleon (Asghari-Moghaddam et al., MICRO 2016).

Near-DRAM acceleration co-packaged with commodity DRAM; the paper
instantiates a 4×4 systolic array as its compute core (Table 4).
Systolic arrays lose utilization on the skinny matrix-vector shapes of
screening (one operand is a single vector), and the array's fill/drain
latency further de-rates short tiles.
"""

from repro.nmp.base import NMPBaselineModel

CHAMELEON_MODEL = NMPBaselineModel(
    name="Chameleon",
    fp32_lanes=16,  # 4×4 systolic array
    frequency_hz=400e6,
    buffer_bytes=1024,
    compute_utilization=0.55,  # matvec on a systolic array: one column active + fill/drain
    psum_bytes_per_row=4,
)
