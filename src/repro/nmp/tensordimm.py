"""TensorDIMM (Kwon et al., MICRO 2019) and TensorDIMM-Large.

A practical rank-level NMP for embedding/tensor operations in deep
learning — the paper's strongest baseline (2.7× behind ENMC).  Its
16-lane vector unit is built for streaming gather-reduce, so it
sustains near-full utilization and clocks higher than the CGRA
designs; its 3×512 B queues still force partial-sum spills on
XC-sized outputs.

TensorDIMM-Large (Figs. 14-15) scales the vector unit and queues 4×,
exceeding the Table 4 budget — the paper uses it to show ENMC's edge
is not mere under-provisioning of the baseline.
"""

from repro.nmp.base import NMPBaselineModel

TENSORDIMM_MODEL = NMPBaselineModel(
    name="TensorDIMM",
    fp32_lanes=16,  # 16-lane VPU
    frequency_hz=700e6,
    buffer_bytes=3 * 512,
    compute_utilization=0.95,
    psum_bytes_per_row=4,
)

TENSORDIMM_LARGE_MODEL = NMPBaselineModel(
    name="TensorDIMM-Large",
    fp32_lanes=64,
    frequency_hz=700e6,
    buffer_bytes=4 * 3 * 512,
    compute_utilization=0.95,
    psum_bytes_per_row=4,
)
