"""NDA (Farmahini-Farahani et al., HPCA 2015).

Near-DRAM acceleration stacking coarse-grain reconfigurable
accelerators (CGRA) on commodity DRAM.  Table 4 budget: 4×4 functional
units + 1 KB memory.  The CGRA's FUs sustain good utilization on
streaming matvecs but run at a moderate clock and spill partials beyond
their 1 KB scratchpad.
"""

from repro.nmp.base import NMPBaselineModel

NDA_MODEL = NMPBaselineModel(
    name="NDA",
    fp32_lanes=16,  # 4×4 functional units
    frequency_hz=400e6,
    buffer_bytes=1024,
    compute_utilization=0.9,
    psum_bytes_per_row=4,
)
