"""The shared NMP-baseline performance model.

Each baseline is parameterized by its compute style (lanes, frequency,
utilization), buffer capacity, and spill behaviour; the timing
composition mirrors :class:`repro.enmc.simulator.ENMCSimulator` minus
the two ENMC advantages (INT4 screening units, dual-module overlap).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.data.registry import Workload
from repro.dram.analytic import AnalyticDRAMModel
from repro.dram.timing import DDR4Timing, DDR4_2400
from repro.enmc.simulator import PhaseBreakdown, SimulationResult
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class NMPBaselineModel:
    """A homogeneous-FP32 rank-level NMP design."""

    name: str
    fp32_lanes: int
    frequency_hz: float
    buffer_bytes: int
    #: Fraction of peak MAC throughput sustained on matvec tiles
    #: (systolic arrays lose utilization on skinny operands).
    compute_utilization: float = 1.0
    #: Working-set bytes per output row during screening; rows beyond
    #: the buffer spill accumulated partials to DRAM (write + readback).
    psum_bytes_per_row: int = 4
    channels: int = 8
    ranks_per_channel: int = 8
    timing: DDR4Timing = DDR4_2400

    def __post_init__(self) -> None:
        check_positive("fp32_lanes", self.fp32_lanes)
        check_positive("frequency_hz", self.frequency_hz)
        check_positive("buffer_bytes", self.buffer_bytes)

    # ------------------------------------------------------------------
    @property
    def total_ranks(self) -> int:
        return self.channels * self.ranks_per_channel

    def macs_per_second(self) -> float:
        return self.fp32_lanes * self.frequency_hz * self.compute_utilization

    # ------------------------------------------------------------------
    def _spill_bytes(self, rows: int, tile_width: int, hidden_dim: int) -> float:
        """Extra DRAM traffic from staging-buffer overflow.

        A screening matvec needs ``psum_bytes_per_row`` live bytes per
        output row plus one ``tile_width`` input slice.  Rows that do
        not fit are written out and read back once per input tile
        (hidden_dim / tile_width passes) — the paper's "buffer overflow
        results in frequent DRAM memory accesses".
        """
        live_rows = max(1, self.buffer_bytes // self.psum_bytes_per_row)
        overflow_rows = max(0, rows - live_rows)
        passes = max(1, math.ceil(hidden_dim / max(tile_width, 1)))
        return 2.0 * overflow_rows * self.psum_bytes_per_row * passes

    def simulate(
        self,
        workload: Workload,
        projection_dim: int = 0,
        candidates_per_row: int = 32,
        batch_size: int = 1,
        screener_bits: int = 4,
        unique_candidate_fraction: float = 1.0,
    ) -> SimulationResult:
        """Screened classification on this baseline (Fig. 13 bars)."""
        check_positive("batch_size", batch_size)
        l, d = workload.num_categories, workload.hidden_dim
        k = projection_dim or max(1, d // 4)
        shards = self.total_ranks
        l_shard = math.ceil(l / shards)
        rank_dram = AnalyticDRAMModel(self.timing, channels=1, ranks_per_channel=1)

        # Screening phase: same weight bytes as ENMC (the data is INT4
        # in DRAM either way; the host pre-projects h → Ph) plus psum
        # spill traffic; compute at FP32.
        tile_width = max(1, self.buffer_bytes // 4 // 2)  # half features, half weights
        screen_bytes = l_shard * k * screener_bits / 8.0
        screen_bytes += self._spill_bytes(l_shard, tile_width, k)
        screen_mem = rank_dram.stream(screen_bytes).seconds
        screen_macs = batch_size * l_shard * k
        screen_compute = screen_macs / self.macs_per_second()
        screen = PhaseBreakdown(screen_mem, screen_compute)

        # Candidate phase: identical traffic, FP32 compute.
        total_candidates = batch_size * candidates_per_row
        unique_rows = min(total_candidates * unique_candidate_fraction, float(l))
        rows_per_rank = max(1, math.ceil(unique_rows / shards))
        exec_mem = rank_dram.gather(rows_per_rank, d * 4.0).seconds
        exec_macs = math.ceil(total_candidates / shards) * d
        exec_compute = exec_macs / self.macs_per_second()
        execute = PhaseBreakdown(exec_mem, exec_compute)

        # Softmax runs on the same lanes (no SFU): ~8 ops per element.
        sfu_elements = math.ceil(total_candidates / shards) + batch_size
        sfu_seconds = 8.0 * sfu_elements / self.macs_per_second()

        return SimulationResult(
            screen=screen,
            execute=execute,
            sfu_seconds=sfu_seconds,
            batch_size=batch_size,
            int_bytes_per_rank=screen_bytes,
            fp_bytes_per_rank=rows_per_rank * d * 4.0,
            activations_per_rank=(
                rank_dram.stream(screen_bytes).activations + rows_per_rank
            ),
            int_macs_per_rank=0.0,  # homogeneous: everything is FP32
            fp_macs_per_rank=screen_macs + exec_macs,
            pipeline_tiles=1,  # no dual-module overlap
        )

    def simulate_full(
        self, workload: Workload, batch_size: int = 1
    ) -> SimulationResult:
        """Full classification on this baseline (no screening).

        The Fig. 14/15 comparisons run TensorDIMM(-Large) over the full
        classification weights — their homogeneous FP32 pipeline is
        built for full-precision tensor ops, and the paper charges them
        exactly that workload.
        """
        check_positive("batch_size", batch_size)
        l, d = workload.num_categories, workload.hidden_dim
        shards = self.total_ranks
        l_shard = math.ceil(l / shards)
        rank_dram = AnalyticDRAMModel(self.timing, channels=1, ranks_per_channel=1)

        tile_width = max(1, self.buffer_bytes // 4 // 2)
        weight_bytes = l_shard * d * 4.0
        weight_bytes += self._spill_bytes(l_shard, tile_width, d)
        mem = rank_dram.stream(weight_bytes).seconds
        macs = batch_size * l_shard * d
        compute = macs / self.macs_per_second()
        phase = PhaseBreakdown(mem, compute)
        sfu_seconds = 8.0 * l_shard / self.macs_per_second()

        return SimulationResult(
            screen=PhaseBreakdown(0.0, 0.0),
            execute=phase,
            sfu_seconds=sfu_seconds,
            batch_size=batch_size,
            int_bytes_per_rank=0.0,
            fp_bytes_per_rank=weight_bytes,
            activations_per_rank=rank_dram.stream(weight_bytes).activations,
            int_macs_per_rank=0.0,
            fp_macs_per_rank=macs,
            pipeline_tiles=1,
        )

    def seconds(self, workload: Workload, **kwargs) -> float:
        """Serialized latency (baselines have no phase overlap)."""
        return self.simulate(workload, **kwargs).serialized_seconds
