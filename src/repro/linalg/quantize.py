"""Symmetric fixed-point quantization.

The ENMC Screener runs at INT4 (Section 5.2); the paper's Fig. 12(b)
sweeps quantization levels of the screening module.  We implement a
per-tensor / per-row symmetric linear quantizer:

    q = clip(round(x / scale), -2^(b-1), 2^(b-1) - 1)
    x̂ = q * scale

with ``scale`` chosen from the maximum absolute value, which matches
the straightforward post-training quantization the paper describes
("Both the input features and the screening parameters are further
quantized at inference time").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.validation import check_positive

#: Bit-widths accepted by the hardware model (INT2 appears only in the
#: Fig. 12(b) sensitivity sweep; the shipped Screener uses INT4).
SUPPORTED_BITS = (2, 3, 4, 6, 8, 16)


def _qrange(bits: int) -> tuple:
    if bits not in SUPPORTED_BITS:
        raise ValueError(f"unsupported bit width {bits}; expected one of {SUPPORTED_BITS}")
    qmax = 2 ** (bits - 1) - 1
    qmin = -(2 ** (bits - 1))
    return qmin, qmax


@dataclass(frozen=True)
class QuantizedTensor:
    """An integer tensor plus the scale(s) required to dequantize it.

    ``scale`` is either a scalar (per-tensor) or an array broadcastable
    against ``values`` along the quantization axis (per-row).
    """

    values: np.ndarray
    scale: np.ndarray
    bits: int

    @property
    def shape(self) -> tuple:
        return self.values.shape

    @property
    def nbytes(self) -> float:
        """Storage cost in bytes at the nominal bit width (fractional for sub-byte)."""
        return self.values.size * self.bits / 8.0

    def dequantize(self) -> np.ndarray:
        """Reconstruct the floating-point approximation."""
        return self.values.astype(np.float64) * self.scale


def quantize_symmetric(
    tensor: np.ndarray,
    bits: int = 4,
    axis: Optional[int] = None,
) -> QuantizedTensor:
    """Quantize ``tensor`` symmetrically to ``bits`` bits.

    ``axis=None`` uses one scale for the whole tensor; an integer axis
    computes one scale per slice along that axis (e.g. ``axis=1`` on an
    ``(l, k)`` weight matrix gives per-output-row scales, which is what
    a per-row MAC pipeline naturally supports).
    """
    array = np.asarray(tensor, dtype=np.float64)
    qmin, qmax = _qrange(bits)
    scale = _symmetric_scale(array, qmax, axis)
    q = np.clip(np.round(array / scale), qmin, qmax)
    dtype = np.int8 if bits <= 8 else np.int16
    return QuantizedTensor(values=q.astype(dtype), scale=np.asarray(scale), bits=bits)


def dequantize(quantized: QuantizedTensor) -> np.ndarray:
    """Module-level alias of :meth:`QuantizedTensor.dequantize`."""
    return quantized.dequantize()


def quantization_error(tensor: np.ndarray, bits: int, axis: Optional[int] = None) -> float:
    """Root-mean-square reconstruction error of quantizing ``tensor``."""
    array = np.asarray(tensor, dtype=np.float64)
    if array.size == 0:
        return 0.0
    reconstructed = quantize_symmetric(array, bits=bits, axis=axis).dequantize()
    return float(np.sqrt(np.mean((array - reconstructed) ** 2)))


def _symmetric_scale(
    array: np.ndarray, qmax: int, axis: Optional[int]
) -> np.ndarray:
    """The max-abs symmetric scale, per tensor or per slice of ``axis``."""
    if axis is None:
        max_abs = np.max(np.abs(array)) if array.size else 0.0
        return np.asarray(max_abs / qmax if max_abs > 0 else 1.0)
    reduce_axes = tuple(i for i in range(array.ndim) if i != axis % array.ndim)
    max_abs = np.max(np.abs(array), axis=reduce_axes, keepdims=True)
    return np.where(max_abs > 0, max_abs / qmax, 1.0)


class Quantizer:
    """A reusable quantization policy (bit width + axis).

    Hardware units hold a ``Quantizer`` describing their datapath; the
    algorithm-level pipeline uses it to emulate fixed-point inference.
    The bit range is resolved once at construction so per-call overhead
    stays off the inference hot path.
    """

    def __init__(self, bits: int = 4, axis: Optional[int] = None):
        check_positive("bits", bits)
        self.qmin, self.qmax = _qrange(bits)
        self.bits = bits
        self.axis = axis

    def __call__(self, tensor: np.ndarray) -> QuantizedTensor:
        return quantize_symmetric(tensor, bits=self.bits, axis=self.axis)

    def fake_quantize(self, tensor: np.ndarray) -> np.ndarray:
        """Quantize then immediately dequantize (simulated fixed point).

        This stays in the float domain — ``clip(round(x/s)) * s`` —
        producing values bit-identical to an int round-trip without
        materializing the integer tensor, which matters on the per-call
        inference path.
        """
        array = np.asarray(tensor, dtype=np.float64)
        scale = _symmetric_scale(array, self.qmax, self.axis)
        return np.clip(np.round(array / scale), self.qmin, self.qmax) * scale

    def __repr__(self) -> str:
        return f"Quantizer(bits={self.bits}, axis={self.axis})"
