"""Symmetric fixed-point quantization.

The ENMC Screener runs at INT4 (Section 5.2); the paper's Fig. 12(b)
sweeps quantization levels of the screening module.  We implement a
per-tensor / per-row symmetric linear quantizer:

    q = clip(round(x / scale), -2^(b-1), 2^(b-1) - 1)
    x̂ = q * scale

with ``scale`` chosen from the maximum absolute value, which matches
the straightforward post-training quantization the paper describes
("Both the input features and the screening parameters are further
quantized at inference time").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.validation import check_positive

#: Bit-widths accepted by the hardware model (INT2 appears only in the
#: Fig. 12(b) sensitivity sweep; the shipped Screener uses INT4).
SUPPORTED_BITS = (2, 3, 4, 6, 8, 16)


def _qrange(bits: int) -> tuple:
    if bits not in SUPPORTED_BITS:
        raise ValueError(f"unsupported bit width {bits}; expected one of {SUPPORTED_BITS}")
    qmax = 2 ** (bits - 1) - 1
    qmin = -(2 ** (bits - 1))
    return qmin, qmax


@dataclass(frozen=True)
class QuantizedTensor:
    """An integer tensor plus the scale(s) required to dequantize it.

    ``scale`` is either a scalar (per-tensor) or an array broadcastable
    against ``values`` along the quantization axis (per-row).
    """

    values: np.ndarray
    scale: np.ndarray
    bits: int

    @property
    def shape(self) -> tuple:
        return self.values.shape

    @property
    def nbytes(self) -> float:
        """Storage cost in bytes at the nominal bit width (fractional for sub-byte)."""
        return self.values.size * self.bits / 8.0

    def dequantize(self) -> np.ndarray:
        """Reconstruct the floating-point approximation."""
        return self.values.astype(np.float64) * self.scale


@dataclass(frozen=True)
class TileQuantized:
    """Integer codes with one symmetric scale per row tile.

    The tile axis is axis 0 (the category axis of an ``(l, d)`` weight
    matrix): rows ``[t * tile_rows, (t+1) * tile_rows)`` share scale
    ``scales[t]``.  This is the layout the block-quantized exact-weight
    store uses — the streaming exact phase walks the same canonical
    category tiles as the screening GEMM, so one scale load dequantizes
    a whole tile.
    """

    values: np.ndarray
    scales: np.ndarray
    bits: int
    tile_rows: int

    @property
    def shape(self) -> tuple:
        return self.values.shape

    @property
    def num_tiles(self) -> int:
        return self.scales.shape[0]

    @property
    def nbytes(self) -> int:
        """Actual storage bytes (codes at their container width + scales)."""
        return self.values.nbytes + self.scales.nbytes

    def row_scales(self, indices: np.ndarray) -> np.ndarray:
        """The per-row dequantization scale for arbitrary row indices."""
        return self.scales[np.asarray(indices, dtype=np.intp) // self.tile_rows]

    def dequantize_rows(
        self,
        indices: np.ndarray,
        dtype=np.float64,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Gathered rows reconstructed in ``dtype`` (target-dtype dequantize).

        ``out`` (shape ``(len(indices), d)``) lets callers reuse
        workspace scratch so the gather stays allocation-flat.
        """
        index_array = np.asarray(indices, dtype=np.intp)
        if out is None:
            out = np.empty((index_array.size, self.values.shape[1]), dtype=dtype)
        np.copyto(out, self.values[index_array], casting="unsafe")
        out *= self.row_scales(index_array)[:, None].astype(dtype, copy=False)
        return out

    def dequantize_tile(
        self,
        start: int,
        stop: int,
        dtype=np.float64,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One row tile ``[start, stop)`` reconstructed in ``dtype``.

        ``[start, stop)`` must lie inside a single tile (the canonical
        traversal always passes tile-aligned bounds).
        """
        tile = start // self.tile_rows
        if stop > min((tile + 1) * self.tile_rows, self.values.shape[0]):
            raise ValueError(
                f"rows [{start}, {stop}) cross a {self.tile_rows}-row tile "
                "boundary"
            )
        if out is None:
            out = np.empty((stop - start, self.values.shape[1]), dtype=dtype)
        np.copyto(out, self.values[start:stop], casting="unsafe")
        out *= self.scales[tile]
        return out

    def dequantize(self, dtype=np.float64) -> np.ndarray:
        """The full reconstructed matrix (tests / small stores only)."""
        out = np.empty(self.values.shape, dtype=dtype)
        for tile in range(self.num_tiles):
            start = tile * self.tile_rows
            stop = min(start + self.tile_rows, self.values.shape[0])
            self.dequantize_tile(start, stop, dtype=dtype, out=out[start:stop])
        return out


def quantize_tiles(
    tensor: np.ndarray,
    bits: int = 8,
    tile_rows: int = 8192,
) -> TileQuantized:
    """Quantize a 2-D tensor symmetrically with one scale per row tile.

    Each block of ``tile_rows`` consecutive rows gets its own max-abs
    symmetric scale; an all-zero tile quantizes to zero codes with the
    neutral scale ``1.0`` (so dequantization is exact).  Codes land in
    ``int8`` for ``bits <= 8`` and ``int16`` above, clipped to
    ``[qmin, qmax]`` — at the boundary, the most negative representable
    code is ``-qmax`` (max-abs scaling never reaches ``qmin``).
    """
    array = np.asarray(tensor, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(f"quantize_tiles needs a 2-D tensor, got {array.shape}")
    check_positive("tile_rows", tile_rows)
    qmin, qmax = _qrange(bits)
    rows = array.shape[0]
    num_tiles = max(1, -(-rows // tile_rows))
    scales = np.empty(num_tiles, dtype=np.float64)
    dtype = np.int8 if bits <= 8 else np.int16
    codes = np.empty(array.shape, dtype=dtype)
    for tile in range(num_tiles):
        start = tile * tile_rows
        stop = min(start + tile_rows, rows)
        block = array[start:stop]
        max_abs = float(np.max(np.abs(block))) if block.size else 0.0
        # Neutral scale for all-zero tiles, and for subnormal tiles
        # whose max_abs / qmax underflows to 0.0 (a zero scale would
        # turn dequantization into divide-by-zero).
        scale = max_abs / qmax
        if not scale > 0:
            scale = 1.0
        scales[tile] = scale
        np.clip(np.round(block / scale), qmin, qmax, out=codes[start:stop], casting="unsafe")
    return TileQuantized(values=codes, scales=scales, bits=bits, tile_rows=int(tile_rows))


def quantize_symmetric(
    tensor: np.ndarray,
    bits: int = 4,
    axis: Optional[int] = None,
) -> QuantizedTensor:
    """Quantize ``tensor`` symmetrically to ``bits`` bits.

    ``axis=None`` uses one scale for the whole tensor; an integer axis
    computes one scale per slice along that axis (e.g. ``axis=1`` on an
    ``(l, k)`` weight matrix gives per-output-row scales, which is what
    a per-row MAC pipeline naturally supports).
    """
    array = np.asarray(tensor, dtype=np.float64)
    qmin, qmax = _qrange(bits)
    scale = _symmetric_scale(array, qmax, axis)
    q = np.clip(np.round(array / scale), qmin, qmax)
    dtype = np.int8 if bits <= 8 else np.int16
    return QuantizedTensor(values=q.astype(dtype), scale=np.asarray(scale), bits=bits)


def dequantize(quantized: QuantizedTensor) -> np.ndarray:
    """Module-level alias of :meth:`QuantizedTensor.dequantize`."""
    return quantized.dequantize()


def quantization_error(tensor: np.ndarray, bits: int, axis: Optional[int] = None) -> float:
    """Root-mean-square reconstruction error of quantizing ``tensor``."""
    array = np.asarray(tensor, dtype=np.float64)
    if array.size == 0:
        return 0.0
    reconstructed = quantize_symmetric(array, bits=bits, axis=axis).dequantize()
    return float(np.sqrt(np.mean((array - reconstructed) ** 2)))


def _symmetric_scale(
    array: np.ndarray, qmax: int, axis: Optional[int]
) -> np.ndarray:
    """The max-abs symmetric scale, per tensor or per slice of ``axis``.

    The neutral scale ``1.0`` stands in wherever ``max_abs / qmax`` is
    not a positive number — all-zero slices, and slices of subnormal
    magnitude whose quotient underflows to ``0.0`` (dividing by it
    would produce inf/nan codes); such values quantize to zero codes.
    """
    if axis is None:
        max_abs = np.max(np.abs(array)) if array.size else 0.0
        scale = max_abs / qmax
        return np.asarray(scale if scale > 0 else 1.0)
    reduce_axes = tuple(i for i in range(array.ndim) if i != axis % array.ndim)
    max_abs = np.max(np.abs(array), axis=reduce_axes, keepdims=True)
    scale = max_abs / qmax
    return np.where(scale > 0, scale, 1.0)


class Quantizer:
    """A reusable quantization policy (bit width + axis).

    Hardware units hold a ``Quantizer`` describing their datapath; the
    algorithm-level pipeline uses it to emulate fixed-point inference.
    The bit range is resolved once at construction so per-call overhead
    stays off the inference hot path.
    """

    def __init__(self, bits: int = 4, axis: Optional[int] = None):
        check_positive("bits", bits)
        self.qmin, self.qmax = _qrange(bits)
        self.bits = bits
        self.axis = axis

    def __call__(self, tensor: np.ndarray) -> QuantizedTensor:
        return quantize_symmetric(tensor, bits=self.bits, axis=self.axis)

    def fake_quantize(self, tensor: np.ndarray) -> np.ndarray:
        """Quantize then immediately dequantize (simulated fixed point).

        This stays in the float domain — ``clip(round(x/s)) * s`` —
        producing values bit-identical to an int round-trip without
        materializing the integer tensor, which matters on the per-call
        inference path.
        """
        array = np.asarray(tensor, dtype=np.float64)
        scale = _symmetric_scale(array, self.qmax, self.axis)
        return np.clip(np.round(array / scale), self.qmin, self.qmax) * scale

    def __repr__(self) -> str:
        return f"Quantizer(bits={self.bits}, axis={self.axis})"
