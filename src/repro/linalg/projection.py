"""Random projections for dimensionality reduction.

The screening module projects the hidden vector ``h`` from dimension
``d`` down to ``k`` with the Achlioptas sparse random projection
(paper Eq. 3):

    P ∈ sqrt(3/k) · {-1, 0, +1}^{k×d}

with entries drawn as -1/0/+1 with probabilities 1/6, 2/3, 1/6.  The
ternary structure lets the hardware store ``P`` in 2-bit format (the
paper notes < 0.1% overhead versus the classifier weights) and apply it
with adds/subtracts only.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


class SparseRandomProjection:
    """Achlioptas sparse random projection ``k×d``.

    Parameters
    ----------
    input_dim:
        Source dimensionality ``d`` (the model hidden size).
    output_dim:
        Target dimensionality ``k`` (the screener's reduced hidden size).
    density:
        Probability of a non-zero entry; Achlioptas' classic choice is
        1/3 (so -1 and +1 each appear with probability 1/6).
    rng:
        Seed or generator; the projection is fixed once constructed and
        never trained (paper Section 4.3).
    """

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        density: float = 1.0 / 3.0,
        rng: RngLike = None,
    ):
        check_positive("input_dim", input_dim)
        check_positive("output_dim", output_dim)
        if not 0.0 < density <= 1.0:
            raise ValueError(f"density must be in (0, 1], got {density}")
        if output_dim > input_dim:
            raise ValueError(
                f"projection must reduce dimension: k={output_dim} > d={input_dim}"
            )

        self.input_dim = input_dim
        self.output_dim = output_dim
        self.density = density

        generator = ensure_rng(rng)
        half = density / 2.0
        signs = generator.choice(
            np.array([-1, 0, 1], dtype=np.int8),
            size=(output_dim, input_dim),
            p=[half, 1.0 - density, half],
        )
        self._ternary = signs
        # Scaling keeps inner products unbiased: E[(Px)·(Py)] = x·y.
        self._scale = np.sqrt(1.0 / (density * output_dim))

    @property
    def ternary(self) -> np.ndarray:
        """The raw {-1, 0, +1} matrix (what the 2-bit hardware stores)."""
        return self._ternary

    @property
    def matrix(self) -> np.ndarray:
        """The dense floating-point projection matrix ``P``."""
        return self._ternary.astype(np.float64) * self._scale

    @property
    def nbytes(self) -> float:
        """Storage at 2 bits/entry, as the paper's hardware packs it."""
        return self._ternary.size * 2 / 8.0

    def __call__(self, features: np.ndarray) -> np.ndarray:
        """Project ``features`` (``(..., d)``) to ``(..., k)``."""
        array = np.asarray(features, dtype=np.float64)
        if array.shape[-1] != self.input_dim:
            raise ValueError(
                f"features last dim {array.shape[-1]} != input_dim {self.input_dim}"
            )
        return array @ self.matrix.T

    def __repr__(self) -> str:
        return (
            f"SparseRandomProjection(d={self.input_dim}, k={self.output_dim}, "
            f"density={self.density:.3f})"
        )


def gaussian_projection(
    input_dim: int, output_dim: int, rng: RngLike = None
) -> np.ndarray:
    """A dense Gaussian JL projection, used as an ablation against the
    sparse ternary projection (see DESIGN.md §5)."""
    check_positive("input_dim", input_dim)
    check_positive("output_dim", output_dim)
    generator = ensure_rng(rng)
    return generator.standard_normal((output_dim, input_dim)) / np.sqrt(output_dim)
