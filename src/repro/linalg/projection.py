"""Random projections for dimensionality reduction.

The screening module projects the hidden vector ``h`` from dimension
``d`` down to ``k`` with the Achlioptas sparse random projection
(paper Eq. 3):

    P ∈ sqrt(3/k) · {-1, 0, +1}^{k×d}

with entries drawn as -1/0/+1 with probabilities 1/6, 2/3, 1/6.  The
ternary structure lets the hardware store ``P`` in 2-bit format (the
paper notes < 0.1% overhead versus the classifier weights) and apply it
with adds/subtracts only.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


class SparseRandomProjection:
    """Achlioptas sparse random projection ``k×d``.

    Parameters
    ----------
    input_dim:
        Source dimensionality ``d`` (the model hidden size).
    output_dim:
        Target dimensionality ``k`` (the screener's reduced hidden size).
    density:
        Probability of a non-zero entry; Achlioptas' classic choice is
        1/3 (so -1 and +1 each appear with probability 1/6).
    rng:
        Seed or generator; the projection is fixed once constructed and
        never trained (paper Section 4.3).

    The dense floating-point matrix is materialized lazily and cached:
    the projection is immutable, so re-deriving it on every call (as
    earlier revisions did) only burned memory bandwidth on the hottest
    path in the repository.
    """

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        density: float = 1.0 / 3.0,
        rng: RngLike = None,
    ):
        check_positive("input_dim", input_dim)
        check_positive("output_dim", output_dim)
        if not 0.0 < density <= 1.0:
            raise ValueError(f"density must be in (0, 1], got {density}")
        if output_dim > input_dim:
            raise ValueError(
                f"projection must reduce dimension: k={output_dim} > d={input_dim}"
            )

        self.input_dim = input_dim
        self.output_dim = output_dim
        self.density = density

        generator = ensure_rng(rng)
        half = density / 2.0
        signs = generator.choice(
            np.array([-1, 0, 1], dtype=np.int8),
            size=(output_dim, input_dim),
            p=[half, 1.0 - density, half],
        )
        self._ternary = signs
        # Scaling keeps inner products unbiased: E[(Px)·(Py)] = x·y.
        self._scale = np.sqrt(1.0 / (density * output_dim))
        self._matrix: Optional[np.ndarray] = None
        self._matrix_t: Optional[np.ndarray] = None
        self._ternary_t_int32: Optional[np.ndarray] = None

    @classmethod
    def from_ternary(
        cls, ternary: np.ndarray, density: float
    ) -> "SparseRandomProjection":
        """Rebuild a projection from its stored ``{-1, 0, +1}`` matrix.

        This is the deserialization entry point: the 2-bit ternary
        matrix plus the density fully determine the projection (the
        scale is ``sqrt(1 / (density * k))``), so a loaded instance is
        indistinguishable from the originally constructed one —
        including the cached dense matrix derived from it.
        """
        array = np.asarray(ternary)
        if array.ndim != 2:
            raise ValueError(f"ternary must be 2-D (k, d), got shape {array.shape}")
        if not np.isin(array, (-1, 0, 1)).all():
            raise ValueError("ternary entries must all be in {-1, 0, +1}")
        if not 0.0 < density <= 1.0:
            raise ValueError(f"density must be in (0, 1], got {density}")

        projection = cls.__new__(cls)
        projection.input_dim = int(array.shape[1])
        projection.output_dim = int(array.shape[0])
        projection.density = float(density)
        # copy=False keeps an int8 input (e.g. a shared-memory view
        # attached by a serving worker) as the live backing store.
        projection._ternary = array.astype(np.int8, copy=False)
        projection._scale = np.sqrt(1.0 / (projection.density * projection.output_dim))
        projection._matrix = None
        projection._matrix_t = None
        projection._ternary_t_int32 = None
        return projection

    @property
    def ternary(self) -> np.ndarray:
        """The raw {-1, 0, +1} matrix (what the 2-bit hardware stores)."""
        return self._ternary

    @property
    def scale(self) -> float:
        """The uniform magnitude of non-zero entries, ``sqrt(1/(density·k))``."""
        return float(self._scale)

    @property
    def matrix(self) -> np.ndarray:
        """The dense floating-point projection matrix ``P`` (cached)."""
        if self._matrix is None:
            self._matrix = self._ternary.astype(np.float64) * self._scale
        return self._matrix

    @property
    def nbytes(self) -> float:
        """Storage at 2 bits/entry, as the paper's hardware packs it."""
        return self._ternary.size * 2 / 8.0

    def __call__(self, features: np.ndarray) -> np.ndarray:
        """Project ``features`` (``(..., d)``) to ``(..., k)``."""
        array = np.asarray(features, dtype=np.float64)
        if array.shape[-1] != self.input_dim:
            raise ValueError(
                f"features last dim {array.shape[-1]} != input_dim {self.input_dim}"
            )
        if self._matrix_t is None:
            # Cache P.T contiguously so the hot matmul never re-packs it.
            self._matrix_t = np.ascontiguousarray(self.matrix.T)
        return array @ self._matrix_t

    def apply_ternary(self, values: np.ndarray) -> np.ndarray:
        """Integer-domain projection: apply ``P`` to quantized features.

        ``values`` must be an integer array of shape ``(..., d)`` (e.g.
        the INT codes of a :class:`~repro.linalg.quantize.QuantizedTensor`).
        The ternary matrix is applied as a pure integer matmul with
        int32 accumulation — adds/subtracts only, exactly what the
        hardware's 2-bit datapath does — and the floating-point scale is
        deferred: multiplying the result by ``input_scale * self.scale``
        reproduces ``projection(dequantized_input)`` with a single
        scalar per output instead of a dense float matrix.
        """
        array = np.asarray(values)
        if not np.issubdtype(array.dtype, np.integer):
            raise TypeError(
                f"apply_ternary expects integer codes, got dtype {array.dtype}"
            )
        if array.shape[-1] != self.input_dim:
            raise ValueError(
                f"features last dim {array.shape[-1]} != input_dim {self.input_dim}"
            )
        if self._ternary_t_int32 is None:
            self._ternary_t_int32 = np.ascontiguousarray(
                self._ternary.T.astype(np.int32)
            )
        return array.astype(np.int32) @ self._ternary_t_int32

    def __repr__(self) -> str:
        return (
            f"SparseRandomProjection(d={self.input_dim}, k={self.output_dim}, "
            f"density={self.density:.3f})"
        )


def gaussian_projection(
    input_dim: int, output_dim: int, rng: RngLike = None
) -> np.ndarray:
    """A dense Gaussian JL projection, used as an ablation against the
    sparse ternary projection (see DESIGN.md §5)."""
    check_positive("input_dim", input_dim)
    check_positive("output_dim", output_dim)
    generator = ensure_rng(rng)
    return generator.standard_normal((output_dim, input_dim)) / np.sqrt(output_dim)
