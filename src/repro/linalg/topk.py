"""Top-k and threshold selection over screening scores.

Paper Section 4.2: "The estimation can be done with top-m searching or
thresholding, where the threshold value can be tuned on validation
sets."  Both primitives operate on batched score matrices.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.utils.validation import check_positive


def top_k_indices(scores: np.ndarray, k: int, sort: bool = True) -> np.ndarray:
    """Indices of the ``k`` largest entries along the last axis.

    Returns an array of shape ``scores.shape[:-1] + (k,)``.  With
    ``sort=True`` indices are ordered by descending score, which the
    language-modeling decoder relies on; ``sort=False`` saves the sort
    when the caller only needs set membership (candidate screening).
    """
    array = np.asarray(scores)
    check_positive("k", k)
    if k > array.shape[-1]:
        raise ValueError(f"k={k} exceeds score dimension {array.shape[-1]}")

    if k == array.shape[-1]:
        indices = np.broadcast_to(
            np.arange(k), array.shape[:-1] + (k,)
        ).copy()
    else:
        indices = np.argpartition(array, -k, axis=-1)[..., -k:]

    if sort:
        gathered = np.take_along_axis(array, indices, axis=-1)
        order = np.argsort(-gathered, axis=-1)
        indices = np.take_along_axis(indices, order, axis=-1)
    return indices


def stable_top_m_indices(scores: np.ndarray, m: int) -> np.ndarray:
    """Deterministic batched top-``m``: ties broken by lowest index.

    Returns a ``(batch, m)`` index array, ascending within each row.
    The selection rule is the lexicographic maximum under
    ``(score descending, index ascending)`` — a *total* order, so the
    selected set is unique and independent of how the score plane is
    partitioned.  That property is what lets the blocked streaming
    reducer (:class:`BlockwiseTopM`) reproduce the dense selection bit
    for bit for every block size, even on degenerate inputs where the
    INT4 screener produces exact score ties.
    """
    array = np.asarray(scores)
    if array.ndim != 2:
        raise ValueError(f"scores must be 2-D, got shape {array.shape}")
    batch, n = array.shape
    check_positive("m", m)
    if m >= n:
        return np.broadcast_to(np.arange(n), (batch, n)).copy()

    kth = np.partition(array, n - m, axis=1)[:, n - m : n - m + 1]
    ge = array >= kth
    counts = ge.sum(axis=1)
    if np.all(counts == m):
        # No ties straddle the cut: the mask alone is the selection.
        mask = ge
    else:
        gt = array > kth
        eq = ge & ~gt
        need = m - gt.sum(axis=1, keepdims=True)
        mask = gt | (eq & (np.cumsum(eq, axis=1) <= need))
    return np.nonzero(mask)[1].reshape(batch, m)


class BlockwiseTopM:
    """Running per-row top-``m`` over column blocks of a score plane.

    Feed score blocks left to right via :meth:`update`; the reducer
    keeps each row's current ``m`` best ``(score, global column)``
    pairs under the same ``(score desc, index asc)`` total order as
    :func:`stable_top_m_indices`, so the finalized selection equals the
    dense selection for any block partition: an entry is evicted only
    when ``m`` entries beat it under the total order, and "beats" is
    transitive, so exactly the ``m`` global maxima survive.

    The kept columns stay ascending within each row (they are gathered
    in position order and every new block lies to the right of all kept
    columns), which makes position order equal global-index order in
    the merge — the tie-break therefore needs no explicit index sort.

    Scratch state lives in a :class:`repro.utils.memory.Workspace` when
    one is supplied, so steady-state updates allocate nothing new.
    """

    def __init__(
        self, batch: int, m: int, workspace=None, key: str = "topm", dtype=np.float64
    ):
        check_positive("m", m)
        from repro.utils.memory import Workspace

        self._ws = workspace if workspace is not None else Workspace()
        self._key = key
        self.batch = batch
        self.m = m
        self.dtype = np.dtype(dtype)
        self._scores = self._ws.buffer((key, "scores"), (batch, m), self.dtype)
        self._cols = self._ws.buffer((key, "cols"), (batch, m), np.intp)
        self._filled = 0

    def update(self, start: int, block: np.ndarray) -> None:
        """Fold in scores for global columns ``[start, start+width)``."""
        width = block.shape[1]
        if width == 0:
            return
        merged = self._filled + width
        cand_scores = self._ws.buffer(
            (self._key, "merge"), (self.batch, merged), self.dtype
        )
        cand_scores[:, : self._filled] = self._scores[:, : self._filled]
        cand_scores[:, self._filled :] = block
        if merged <= self.m:
            self._scores[:, self._filled : merged] = block
            self._cols[:, self._filled : merged] = start + np.arange(width)
            self._filled = merged
            return
        keep = stable_top_m_indices(cand_scores, self.m)
        cand_cols = self._ws.buffer(
            (self._key, "merge_cols"), (self.batch, merged), np.intp
        )
        cand_cols[:, : self._filled] = self._cols[:, : self._filled]
        cand_cols[:, self._filled :] = start + np.arange(width)
        self._scores[...] = np.take_along_axis(cand_scores, keep, axis=1)
        self._cols[...] = np.take_along_axis(cand_cols, keep, axis=1)
        self._filled = self.m

    def finalize(self):
        """``(counts, cols, values)`` in the flat candidate layout:
        per-row counts, then all kept columns (ascending within each
        row) and their scores, concatenated in row order."""
        filled = self._filled
        counts = np.full(self.batch, filled, dtype=np.intp)
        cols = self._cols[:, :filled].reshape(-1).copy()
        values = self._scores[:, :filled].reshape(-1).copy()
        return counts, cols, values


class BlockwiseThreshold:
    """Running threshold filter over column blocks of a score plane.

    Selection is final the moment a block streams past (``score >
    threshold`` needs no global context), so the reducer just appends
    hits to growable workspace buffers.  Finalize groups them by row
    with a stable sort; within a row, appended columns are already
    ascending (blocks arrive left to right), so the result matches the
    dense flat-scan selection exactly.
    """

    def __init__(
        self,
        batch: int,
        threshold: float,
        workspace=None,
        key: str = "thr",
        dtype=np.float64,
    ):
        if threshold is None:
            raise ValueError("threshold mode requires a calibrated threshold")
        from repro.utils.memory import Workspace

        self._ws = workspace if workspace is not None else Workspace()
        self._key = key
        self.batch = batch
        self.threshold = float(threshold)
        self.dtype = np.dtype(dtype)
        self._count = 0

    def update(self, start: int, block: np.ndarray) -> None:
        width = block.shape[1]
        if width == 0:
            return
        hit_mask = self._ws.buffer((self._key, "mask"), block.shape, bool)
        np.greater(block, self.threshold, out=hit_mask)
        flat = np.flatnonzero(hit_mask)
        if flat.size == 0:
            return
        local_rows = flat // width
        local_cols = flat - local_rows * width
        total = self._count + flat.size
        rows = self._ws.growable((self._key, "rows"), total, np.intp)
        cols = self._ws.growable((self._key, "cols"), total, np.intp)
        values = self._ws.growable((self._key, "values"), total, self.dtype)
        rows[self._count : total] = local_rows
        cols[self._count : total] = start + local_cols
        values[self._count : total] = block[local_rows, local_cols]
        self._count = total

    def finalize(self):
        """``(counts, cols, values)`` in the flat candidate layout."""
        total = self._count
        rows = self._ws.growable((self._key, "rows"), max(total, 1), np.intp)[:total]
        cols = self._ws.growable((self._key, "cols"), max(total, 1), np.intp)[:total]
        values = self._ws.growable((self._key, "values"), max(total, 1), self.dtype)[:total]
        order = np.argsort(rows, kind="stable")
        counts = np.bincount(rows, minlength=self.batch).astype(np.intp)
        return counts, cols[order].copy(), values[order].copy()


def select_above_threshold(scores: np.ndarray, threshold: float) -> List[np.ndarray]:
    """Per-row indices whose score strictly exceeds ``threshold``.

    This models the Screener's comparator array; rows may select
    different counts, so the result is a ragged list (one index array
    per batch row).  Implemented as one flat scan plus a split — a 2-D
    ``np.nonzero`` pays an index-unraveling pass over the whole score
    plane, which dominates at extreme ``l``.
    """
    array = np.asarray(scores)
    if array.ndim == 1:
        array = array[None, :]
    if array.ndim != 2:
        raise ValueError(f"scores must be 1-D or 2-D, got shape {array.shape}")
    rows, cols = array.shape
    flat = np.flatnonzero(array.ravel() > threshold)
    row_of = flat // cols
    boundaries = np.searchsorted(row_of, np.arange(1, rows))
    return np.split(flat - row_of * cols, boundaries)


def calibrate_threshold(scores: np.ndarray, target_candidates: float) -> float:
    """Choose a threshold so rows select ``target_candidates`` on average.

    This is the "tuned on validation sets" step: given screening scores
    from a validation batch, pick the value whose exceedance count
    matches the desired candidate budget.
    """
    array = np.asarray(scores, dtype=np.float64)
    if array.ndim == 1:
        array = array[None, :]
    check_positive("target_candidates", target_candidates)
    if target_candidates >= array.shape[-1]:
        return float(np.min(array)) - 1.0
    quantile = 1.0 - target_candidates / array.shape[-1]
    return float(np.quantile(array, quantile))
