"""Top-k and threshold selection over screening scores.

Paper Section 4.2: "The estimation can be done with top-m searching or
thresholding, where the threshold value can be tuned on validation
sets."  Both primitives operate on batched score matrices.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.utils.validation import check_positive


def top_k_indices(scores: np.ndarray, k: int, sort: bool = True) -> np.ndarray:
    """Indices of the ``k`` largest entries along the last axis.

    Returns an array of shape ``scores.shape[:-1] + (k,)``.  With
    ``sort=True`` indices are ordered by descending score, which the
    language-modeling decoder relies on; ``sort=False`` saves the sort
    when the caller only needs set membership (candidate screening).
    """
    array = np.asarray(scores)
    check_positive("k", k)
    if k > array.shape[-1]:
        raise ValueError(f"k={k} exceeds score dimension {array.shape[-1]}")

    if k == array.shape[-1]:
        indices = np.broadcast_to(
            np.arange(k), array.shape[:-1] + (k,)
        ).copy()
    else:
        indices = np.argpartition(array, -k, axis=-1)[..., -k:]

    if sort:
        gathered = np.take_along_axis(array, indices, axis=-1)
        order = np.argsort(-gathered, axis=-1)
        indices = np.take_along_axis(indices, order, axis=-1)
    return indices


def select_above_threshold(scores: np.ndarray, threshold: float) -> List[np.ndarray]:
    """Per-row indices whose score strictly exceeds ``threshold``.

    This models the Screener's comparator array; rows may select
    different counts, so the result is a ragged list (one index array
    per batch row).  Implemented as one flat scan plus a split — a 2-D
    ``np.nonzero`` pays an index-unraveling pass over the whole score
    plane, which dominates at extreme ``l``.
    """
    array = np.asarray(scores)
    if array.ndim == 1:
        array = array[None, :]
    if array.ndim != 2:
        raise ValueError(f"scores must be 1-D or 2-D, got shape {array.shape}")
    rows, cols = array.shape
    flat = np.flatnonzero(array.ravel() > threshold)
    row_of = flat // cols
    boundaries = np.searchsorted(row_of, np.arange(1, rows))
    return np.split(flat - row_of * cols, boundaries)


def calibrate_threshold(scores: np.ndarray, target_candidates: float) -> float:
    """Choose a threshold so rows select ``target_candidates`` on average.

    This is the "tuned on validation sets" step: given screening scores
    from a validation batch, pick the value whose exceedance count
    matches the desired candidate budget.
    """
    array = np.asarray(scores, dtype=np.float64)
    if array.ndim == 1:
        array = array[None, :]
    check_positive("target_candidates", target_candidates)
    if target_candidates >= array.shape[-1]:
        return float(np.min(array)) - 1.0
    quantile = 1.0 - target_candidates / array.shape[-1]
    return float(np.quantile(array, quantile))
