"""Activation functions, including the hardware SFU approximation.

The ENMC Executor approximates the exponential with a Taylor expansion
to the 4th order (Section 6.2).  ``taylor_exp`` / ``taylor_softmax``
model that special-function unit so algorithm-level experiments can
quantify the SFU's accuracy impact.
"""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    array = np.asarray(logits, dtype=np.float64)
    shifted = array - np.max(array, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    array = np.asarray(logits, dtype=np.float64)
    shifted = array - np.max(array, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def sigmoid(logits: np.ndarray) -> np.ndarray:
    """Elementwise logistic sigmoid (used by the multi-label workloads)."""
    array = np.asarray(logits, dtype=np.float64)
    out = np.empty_like(array)
    positive = array >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-array[positive]))
    exp_x = np.exp(array[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


_LN2 = 0.6931471805599453


def taylor_exp(x: np.ndarray, order: int = 4) -> np.ndarray:
    """Range-reduced Taylor approximation of exp(x) (the SFU model).

    The hardware splits ``x = n·ln2 + r`` with ``|r| ≤ ln2/2``; the
    ``2^n`` factor is an exponent shift in the floating-point datapath
    and only ``exp(r)`` is evaluated as an ``order``-term Taylor
    polynomial (Horner's rule).  Without the reduction a truncated
    series diverges badly for ``x < -2``, which would corrupt softmax
    tails.  Results are clamped at zero: the reduced polynomial is
    positive on its domain, but we keep the guard for robustness at
    order 1.
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    array = np.asarray(x, dtype=np.float64)
    n = np.round(array / _LN2)
    r = array - n * _LN2
    poly = np.ones_like(r)
    for term in range(order, 0, -1):
        poly = poly * r / term + 1.0
    # Clamp the exponent shift to the representable range.
    n = np.clip(n, -1022, 1023)
    return np.maximum(np.ldexp(poly, n.astype(np.int64)), 0.0)


def taylor_softmax(logits: np.ndarray, order: int = 4, axis: int = -1) -> np.ndarray:
    """Softmax computed with the SFU's Taylor-approximated exponential.

    Inputs are max-shifted first (the hardware subtracts the running
    max from the PSUM buffer), which keeps arguments in the negative
    range where the truncated series is best behaved.
    """
    array = np.asarray(logits, dtype=np.float64)
    shifted = array - np.max(array, axis=axis, keepdims=True)
    exp = taylor_exp(shifted, order=order)
    total = np.sum(exp, axis=axis, keepdims=True)
    total = np.where(total > 0, total, 1.0)
    return exp / total


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit (front-end models)."""
    return np.maximum(np.asarray(x, dtype=np.float64), 0.0)


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent (front-end models)."""
    return np.tanh(np.asarray(x, dtype=np.float64))


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit, tanh approximation (Transformer FFN)."""
    array = np.asarray(x, dtype=np.float64)
    return 0.5 * array * (1.0 + np.tanh(0.7978845608028654 * (array + 0.044715 * array**3)))
