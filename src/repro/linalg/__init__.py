"""Numerical building blocks shared by the algorithm and hardware models."""

from repro.linalg.quantize import (
    QuantizedTensor,
    Quantizer,
    TileQuantized,
    dequantize,
    quantize_symmetric,
    quantize_tiles,
)
from repro.linalg.projection import SparseRandomProjection, gaussian_projection
from repro.linalg.functional import (
    log_softmax,
    sigmoid,
    softmax,
    taylor_exp,
    taylor_softmax,
)
from repro.linalg.sgd import SGD, Adam
from repro.linalg.topk import (
    BlockwiseThreshold,
    BlockwiseTopM,
    select_above_threshold,
    stable_top_m_indices,
    top_k_indices,
)

__all__ = [
    "Quantizer",
    "QuantizedTensor",
    "TileQuantized",
    "quantize_symmetric",
    "quantize_tiles",
    "dequantize",
    "SparseRandomProjection",
    "gaussian_projection",
    "softmax",
    "log_softmax",
    "sigmoid",
    "taylor_exp",
    "taylor_softmax",
    "SGD",
    "Adam",
    "top_k_indices",
    "select_above_threshold",
    "stable_top_m_indices",
    "BlockwiseTopM",
    "BlockwiseThreshold",
]
