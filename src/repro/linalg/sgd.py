"""Minimal gradient-descent optimizers in numpy.

Algorithm 1 in the paper updates the screener parameters with SGD on an
MSE distillation loss.  We provide plain SGD (with optional momentum)
as the faithful reproduction and Adam as a practical alternative that
converges in fewer epochs on badly scaled synthetic problems.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.utils.validation import check_positive


class Optimizer:
    """Base class: holds parameter arrays and applies gradient steps.

    Parameters are updated *in place* so callers can keep references.
    """

    def __init__(self, params: Iterable[np.ndarray], lr: float):
        check_positive("lr", lr)
        self.params: List[np.ndarray] = [np.asarray(p) for p in params]
        for p in self.params:
            if not isinstance(p, np.ndarray) or not p.flags.writeable:
                raise ValueError("optimizer parameters must be writeable ndarrays")
        self.lr = lr

    def step(self, grads: Iterable[np.ndarray]) -> None:
        raise NotImplementedError

    def _check_grads(self, grads: Iterable[np.ndarray]) -> List[np.ndarray]:
        grad_list = [np.asarray(g) for g in grads]
        if len(grad_list) != len(self.params):
            raise ValueError(
                f"got {len(grad_list)} gradients for {len(self.params)} parameters"
            )
        for p, g in zip(self.params, grad_list):
            if p.shape != g.shape:
                raise ValueError(f"gradient shape {g.shape} != parameter shape {p.shape}")
        return grad_list


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[np.ndarray], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in self.params]

    def step(self, grads: Iterable[np.ndarray]) -> None:
        for p, g, v in zip(self.params, self._check_grads(grads), self._velocity):
            if self.momentum:
                v *= self.momentum
                v += g
                p -= self.lr * v
            else:
                p -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        params: Iterable[np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        for name, beta in (("beta1", beta1), ("beta2", beta2)):
            if not 0.0 <= beta < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {beta}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in self.params]
        self._v = [np.zeros_like(p) for p in self.params]
        self._t = 0

    def step(self, grads: Iterable[np.ndarray]) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(self.params, self._check_grads(grads), self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def state_dict(self) -> Dict[str, object]:
        """Optimizer state for checkpoint round-trips in long trainings."""
        return {"t": self._t, "m": [m.copy() for m in self._m], "v": [v.copy() for v in self._v]}
