"""Observability for the serving stack: metrics, spans, traces.

Three layers, smallest import surface first:

* :mod:`repro.obs.metrics` — :class:`Counter`, :class:`Gauge`,
  bounded-bucket :class:`Histogram` (log-spaced latency buckets,
  p50/p95/p99 summaries) behind a :class:`MetricsRegistry` with a
  ``snapshot()`` dict API and Prometheus text exposition;
* :mod:`repro.obs.trace` — :class:`Tracer` recording nested
  monotonic-clock spans, exported as Chrome trace-event JSON
  (loadable in ``chrome://tracing``);
* :mod:`repro.obs.recorder` — the contract hot paths program against:
  :data:`NULL_RECORDER` (the no-op default; bit-identical outputs,
  zero steady-state allocations) and :class:`Recorder` (registry +
  optional tracer).

Enable by handing a :class:`Recorder` to the component::

    from repro.obs import Recorder

    recorder = Recorder(trace=True)
    model = ApproximateScreeningClassifier(..., recorder=recorder)
    model.forward_streaming(batch)
    recorder.snapshot()["histograms"]["span.streaming.screen_tile"]
    recorder.tracer.write("trace.json")       # -> chrome://tracing
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    latency_buckets,
    power_of_two_buckets,
)
from repro.obs.recorder import NULL_RECORDER, NullRecorder, Recorder
from repro.obs.trace import Tracer, validate_chrome_events

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "latency_buckets",
    "power_of_two_buckets",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "Tracer",
    "validate_chrome_events",
]
