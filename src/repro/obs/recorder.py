"""The recorder contract: how hot paths talk to observability.

Instrumented components (the screening pipeline, the worker protocol,
the parallel engine, the DRAM scheduler) never import concrete
instruments — they hold a *recorder* and call four verbs on it:

* ``with recorder.span(name):`` — time a phase (histogram + trace span);
* ``recorder.increment(name, n)`` — bump a counter;
* ``recorder.observe(name, value, bounds=None)`` — feed a histogram;
* ``recorder.set_gauge(name, value)`` — set a gauge.

The default recorder everywhere is :data:`NULL_RECORDER`, whose verbs
are empty methods and whose span is one shared, stateless context
manager — no instruments exist, nothing is timed, no per-call objects
are created, and (crucially) the numeric hot path is untouched:
outputs are bit-identical with observability off, and the streaming
workspace's steady-state zero-allocation contract still holds (both
asserted in ``tests/test_obs_offpath.py``).

:class:`Recorder` is the live implementation: spans are timed with the
monotonic clock into ``span.<name>`` latency histograms and, when a
:class:`~repro.obs.trace.Tracer` is attached, recorded as nested trace
spans.  One recorder (and its registry) can be shared across
components — the parallel engine hands its recorder to every
:class:`~repro.utils.workers.WorkerHandle`, so protocol counters and
engine histograms land in one snapshot.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["NullRecorder", "Recorder", "NULL_RECORDER"]


class _NullSpan:
    """A single shared, re-entrant, do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The no-op recorder: observability disabled (the default).

    Every verb is an empty method and :meth:`span` returns one shared
    context manager, so the only cost on a hot path is the call itself.
    ``enabled`` lets rarely-taken instrumentation (e.g. building a
    snapshot dict) be skipped entirely.
    """

    enabled = False
    registry: Optional[MetricsRegistry] = None
    tracer: Optional[Tracer] = None

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def increment(self, name: str, amount: float = 1.0) -> None:
        pass

    def observe(
        self, name: str, value: float, bounds: Optional[Sequence[float]] = None
    ) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def add_gauge(self, name: str, delta: float) -> None:
        pass

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {}

    def __repr__(self) -> str:
        return "NullRecorder()"


#: The process-wide default recorder.  Components store a reference to
#: it at construction; replacing a component's recorder (not this
#: module attribute) is how observability is switched on.
NULL_RECORDER = NullRecorder()


class _Span:
    """One live span: times itself, feeds the histogram and the tracer."""

    __slots__ = ("_recorder", "_name", "_start_ns")

    def __init__(self, recorder: "Recorder", name: str):
        self._recorder = recorder
        self._name = name

    def __enter__(self) -> "_Span":
        tracer = self._recorder.tracer
        if tracer is not None:
            tracer.begin(self._name)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> bool:
        elapsed_ns = time.perf_counter_ns() - self._start_ns
        recorder = self._recorder
        if recorder.tracer is not None:
            recorder.tracer.end()
        recorder.registry.histogram(f"span.{self._name}").observe(elapsed_ns / 1e9)
        return False


class Recorder(NullRecorder):
    """A live recorder: metrics registry plus an optional tracer.

    Parameters
    ----------
    registry:
        The :class:`MetricsRegistry` to record into (one is created if
        omitted).  Share one registry across components to get one
        coherent snapshot.
    tracer:
        Optional :class:`Tracer`; when present every span is also
        recorded as a Chrome trace event.  ``trace=True`` is shorthand
        for attaching a fresh tracer.
    """

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        trace: bool = False,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else (Tracer() if trace else None)

    def span(self, name: str) -> _Span:
        return _Span(self, name)

    def increment(self, name: str, amount: float = 1.0) -> None:
        self.registry.counter(name).inc(amount)

    def observe(
        self, name: str, value: float, bounds: Optional[Sequence[float]] = None
    ) -> None:
        self.registry.histogram(name, bounds).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(value)

    def add_gauge(self, name: str, delta: float) -> None:
        """Atomic up/down adjustment (queue depth, in-flight counts)."""
        self.registry.gauge(name).add(delta)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return self.registry.snapshot()

    def render_prometheus(self) -> str:
        return self.registry.render_prometheus()

    def __repr__(self) -> str:
        traced = self.tracer is not None
        return f"Recorder(metrics={len(list(self.registry.names()))}, traced={traced})"
