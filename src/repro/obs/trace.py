"""Nested-span tracing with Chrome trace-event export.

A :class:`Tracer` records *spans* — named, nested intervals measured on
the monotonic clock (``time.perf_counter_ns``); wall-clock timestamps
never enter a recorded span, so traces are immune to NTP steps and can
be diffed across runs.  Timestamps are microseconds relative to the
tracer's construction instant.

Export is the Chrome trace-event JSON array format — each completed
span becomes one complete event (``"ph": "X"``) with ``name``, ``ts``,
``dur``, ``pid`` and ``tid`` — so a serving trace drops straight into
``chrome://tracing`` / Perfetto, nesting rendered from the timing
containment the spans already have.

Memory is bounded: past ``max_events`` completed spans the tracer keeps
counting (``dropped``) but stops storing, so a tracer left attached to
a long-lived engine cannot grow without limit.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional

__all__ = ["Tracer", "validate_chrome_events"]

#: The keys every exported trace event carries (the minimal schema the
#: benchmark smoke check validates against).
CHROME_EVENT_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")


class Tracer:
    """Records nested spans; exports ``chrome://tracing`` JSON.

    Spans are driven by :meth:`begin`/:meth:`end` pairs (the
    :class:`repro.obs.recorder.Recorder` span context manager calls
    them); nesting is per-thread, tracked with an explicit stack, and
    each thread gets its own ``tid`` in the export.
    """

    def __init__(self, max_events: int = 200_000):
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = int(max_events)
        self._origin_ns = time.perf_counter_ns()
        self._events: List[Dict[str, object]] = []
        self._stacks: Dict[int, List[tuple]] = {}
        self._lock = threading.Lock()
        #: Completed spans discarded because ``max_events`` was reached.
        self.dropped = 0

    # ------------------------------------------------------------------
    def begin(self, name: str) -> None:
        """Open a span; must be balanced by :meth:`end` on this thread."""
        tid = threading.get_ident()
        stack = self._stacks.setdefault(tid, [])
        stack.append((name, time.perf_counter_ns()))

    def end(self) -> None:
        """Close the innermost open span on this thread."""
        stop_ns = time.perf_counter_ns()
        tid = threading.get_ident()
        stack = self._stacks.get(tid)
        if not stack:
            raise RuntimeError("Tracer.end() with no open span on this thread")
        name, start_ns = stack.pop()
        with self._lock:
            if len(self._events) >= self.max_events:
                self.dropped += 1
                return
            self._events.append(
                {
                    "name": name,
                    "ph": "X",
                    "ts": (start_ns - self._origin_ns) / 1e3,
                    "dur": (stop_ns - start_ns) / 1e3,
                    "pid": os.getpid(),
                    "tid": tid,
                }
            )

    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        return len(self._events)

    def open_spans(self) -> int:
        """Spans begun but not yet ended (should be 0 at export time)."""
        return sum(len(stack) for stack in self._stacks.values())

    def chrome_events(self) -> List[Dict[str, object]]:
        """Completed spans as Chrome trace-event dicts (a copy)."""
        with self._lock:
            return [dict(event) for event in self._events]

    def span_names(self) -> List[str]:
        with self._lock:
            return [str(event["name"]) for event in self._events]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0

    def write(self, path: str) -> int:
        """Write the trace-event JSON array; returns the event count.

        The file loads directly in ``chrome://tracing`` (the JSON array
        form of the trace-event format).
        """
        events = self.chrome_events()
        with open(path, "w") as handle:
            json.dump(events, handle)
            handle.write("\n")
        return len(events)

    def __repr__(self) -> str:
        return (
            f"Tracer(events={self.num_events}, open={self.open_spans()}, "
            f"dropped={self.dropped})"
        )


def validate_chrome_events(events: object) -> List[Dict[str, object]]:
    """Check ``events`` against the minimal trace-event schema.

    The contract the benchmark smoke test enforces: a list of dicts,
    each carrying ``name``/``ph``/``ts``/``dur``/``pid``/``tid`` with
    ``ph == "X"`` and non-negative numeric timing.  Returns the events
    on success, raises ``ValueError`` with the first offence otherwise.
    """
    if not isinstance(events, list):
        raise ValueError(f"trace must be a JSON array, got {type(events).__name__}")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index} is not an object")
        missing = [key for key in CHROME_EVENT_KEYS if key not in event]
        if missing:
            raise ValueError(f"event {index} missing keys {missing}")
        if event["ph"] != "X":
            raise ValueError(
                f"event {index}: ph must be 'X' (complete), got {event['ph']!r}"
            )
        for key in ("ts", "dur"):
            value = event[key]
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"event {index}: {key} must be >= 0, got {value!r}")
        if not str(event["name"]):
            raise ValueError(f"event {index}: empty span name")
    return events
