"""Counters, gauges and bounded-bucket histograms for the serving stack.

The paper's whole argument is a latency/traffic breakdown (Fig. 4,
Fig. 13); a serving deployment of the same pipeline needs the software
equivalent — per-phase timing and per-shard tail latency — as a
first-class subsystem (DeepRecSys and the MLPerf serving harnesses
treat it that way).  This module is the storage layer: plain-Python
instruments registered in a :class:`MetricsRegistry`, cheap enough to
live on hot paths and exportable two ways:

* :meth:`MetricsRegistry.snapshot` — a plain nested dict (counters,
  gauges, histogram summaries with p50/p95/p99), the programmatic API
  behind ``engine.stats()`` and the benchmark telemetry block;
* :meth:`MetricsRegistry.render_prometheus` — Prometheus text
  exposition (``# TYPE``-annotated, cumulative ``_bucket{le=...}``
  lines), so a scraper can be pointed at a serving host untranslated.

Histograms use a *fixed* set of bucket bounds chosen at construction
(log-spaced latency decades by default), so memory is bounded no matter
how many observations arrive and percentile queries are O(buckets).
All timing flowing in here comes from monotonic clocks (see
:mod:`repro.obs.trace`); wall-clock timestamps are deliberately absent.

Thread safety: every instrument write (``Counter.inc``, ``Gauge.set``,
``Histogram.observe``) and every registry get-or-create runs under a
per-instrument (resp. per-registry) lock.  The single-threaded engine
never needed this, but the serving front door (:mod:`repro.serving`)
has submitter threads and a batcher thread incrementing the same
counters concurrently — unsynchronized read-modify-write would lose
increments (the hammer test in ``tests/test_obs_threadsafety.py``
demonstrates the loss on an unlocked counter and pins the fix).
Snapshot reads (:meth:`Histogram.summary`) take the same lock, so a
summary is internally consistent (``count`` always equals the bucket
total).
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "latency_buckets",
    "power_of_two_buckets",
]


def latency_buckets(
    start: float = 1e-6, stop: float = 100.0, per_decade: int = 4
) -> Tuple[float, ...]:
    """Log-spaced bucket upper bounds covering ``[start, stop]`` seconds.

    The default grid (1 µs … 100 s, 4 buckets per decade) spans every
    latency this repository can produce — a single screening tile to a
    respawn-with-backoff worst case — in 33 buckets.
    """
    if not 0 < start < stop:
        raise ValueError(f"need 0 < start < stop, got {start}, {stop}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    decades = math.log10(stop / start)
    count = int(round(decades * per_decade))
    bounds = [start * 10 ** (i / per_decade) for i in range(count + 1)]
    return tuple(bounds)


def power_of_two_buckets(limit: int = 4096) -> Tuple[float, ...]:
    """``1, 2, 4, …`` bucket bounds for small-integer distributions
    (queue depths, candidate counts)."""
    if limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit}")
    bounds: List[float] = []
    value = 1
    while value <= limit:
        bounds.append(float(value))
        value *= 2
    return tuple(bounds)


class Counter:
    """A monotonically increasing count (requests, retries, commands).

    ``inc`` is atomic under concurrent writers (per-instrument lock):
    N threads adding M each always leaves ``value == N * M``.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (queue depth, workspace bytes).

    ``set`` replaces the value wholesale, so concurrent writers leave
    one writer's value (last write wins); ``add`` is the atomic
    read-modify-write for up/down tracking (queue depth).
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        """Atomically add ``delta`` (may be negative) to the value."""
        delta = float(delta)
        with self._lock:
            self.value += delta


class Histogram:
    """Fixed-bucket distribution with percentile summaries.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last edge, so
    an observation can never be lost.  ``count``/``total``/``minimum``/
    ``maximum`` are tracked exactly; percentiles are estimated by linear
    interpolation inside the covering bucket (clamped to the exact
    observed min/max at the ends), which is the standard
    bounded-memory trade — error is bounded by the bucket width.
    """

    __slots__ = (
        "bounds", "bucket_counts", "count", "total", "minimum", "maximum",
        "_lock",
    )

    def __init__(self, bounds: Optional[Sequence[float]] = None):
        chosen = tuple(bounds) if bounds is not None else latency_buckets()
        if not chosen:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b <= a for a, b in zip(chosen, chosen[1:])):
            raise ValueError(f"bounds must be strictly increasing: {chosen}")
        self.bounds = chosen
        self.bucket_counts = [0] * (len(chosen) + 1)  # + overflow
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        # Re-entrant: summary() holds the lock while calling percentile().
        self._lock = threading.RLock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    return
            self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``q`` in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = q / 100.0 * self.count
            cumulative = 0
            lower = 0.0
            for index, bucket_count in enumerate(self.bucket_counts):
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.maximum
                )
                if bucket_count:
                    next_cumulative = cumulative + bucket_count
                    if rank <= next_cumulative:
                        fraction = (rank - cumulative) / bucket_count
                        estimate = lower + fraction * (upper - lower)
                        return min(max(estimate, self.minimum), self.maximum)
                    cumulative = next_cumulative
                lower = upper if index < len(self.bounds) else lower
            return self.maximum

    def summary(self) -> Dict[str, float]:
        """The snapshot record: count/sum/min/max/mean + p50/p95/p99.

        Taken under the instrument lock, so the record is internally
        consistent even while writers are observing.
        """
        with self._lock:
            if self.count == 0:
                return {"count": 0}
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.minimum,
                "max": self.maximum,
                "mean": self.mean,
                "p50": self.percentile(50),
                "p95": self.percentile(95),
                "p99": self.percentile(99),
            }


def _prometheus_name(name: str) -> str:
    """Dotted internal names → legal Prometheus metric names."""
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] in "_:"):
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Named instruments, created on first use.

    Names are dotted paths (``parallel.shard.0.latency_s``); a name is
    bound to one instrument kind for the registry's lifetime — asking
    for an existing name as a different kind raises, which catches
    instrumentation typos early.

    Get-or-create runs under a registry lock, so two threads asking for
    the same name always receive the *same* instrument (a racing create
    would silently fork the metric: each thread incrementing its own
    orphan copy).  The fast path (instrument already exists) is a
    single locked dict lookup.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def _check_unbound(self, name: str, want: Dict[str, object]) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if table is not want and name in table:
                raise ValueError(f"metric {name!r} already registered as a {kind}")

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_unbound(name, self._counters)
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_unbound(name, self._gauges)
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_unbound(name, self._histograms)
                instrument = self._histograms[name] = Histogram(bounds)
            return instrument

    # ------------------------------------------------------------------
    def names(self) -> Iterable[str]:
        yield from self._counters
        yield from self._gauges
        yield from self._histograms

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Everything, as a plain nested dict (JSON-serializable)."""
        return {
            "counters": {
                name: counter.value for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name, counter in sorted(self._counters.items()):
            metric = _prometheus_name(name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_format_value(counter.value)}")
        for name, gauge in sorted(self._gauges.items()):
            metric = _prometheus_name(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(gauge.value)}")
        for name, histogram in sorted(self._histograms.items()):
            metric = _prometheus_name(name)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, bucket_count in zip(
                histogram.bounds, histogram.bucket_counts
            ):
                cumulative += bucket_count
                lines.append(
                    f'{metric}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
                )
            lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
            lines.append(f"{metric}_sum {_format_value(histogram.total)}")
            lines.append(f"{metric}_count {histogram.count}")
        return "\n".join(lines) + "\n"
