"""A multi-layer LSTM language-model front-end (LSTM-W33K).

Standard LSTM cell per layer:

    i, f, g, o = split(W_x x + W_h h + b)
    c' = σ(f)·c + σ(i)·tanh(g)
    h' = σ(o)·tanh(c')

The Wikitext-2 model in the paper (Merity et al.) uses hidden size 1500;
we default to 2 layers as that setup does.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.linalg.functional import sigmoid, tanh
from repro.models.base import FrontEnd, FrontEndReport
from repro.models.embedding import Embedding
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


class _LSTMCell:
    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        scale_x = 1.0 / np.sqrt(input_dim)
        scale_h = 1.0 / np.sqrt(hidden_dim)
        self.w_x = rng.standard_normal((4 * hidden_dim, input_dim)) * scale_x
        self.w_h = rng.standard_normal((4 * hidden_dim, hidden_dim)) * scale_h
        self.bias = np.zeros(4 * hidden_dim)
        # Classic trick: positive forget-gate bias stabilizes early steps.
        self.bias[hidden_dim : 2 * hidden_dim] = 1.0
        self.hidden_dim = hidden_dim
        self.input_dim = input_dim

    @property
    def parameters(self) -> int:
        return self.w_x.size + self.w_h.size + self.bias.size

    def step(
        self, x: np.ndarray, state: Tuple[np.ndarray, np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        h, c = state
        gates = x @ self.w_x.T + h @ self.w_h.T + self.bias
        hd = self.hidden_dim
        i = sigmoid(gates[:, :hd])
        f = sigmoid(gates[:, hd : 2 * hd])
        g = tanh(gates[:, 2 * hd : 3 * hd])
        o = sigmoid(gates[:, 3 * hd :])
        c_next = f * c + i * g
        h_next = o * tanh(c_next)
        return h_next, c_next


class LSTMModel(FrontEnd):
    """Multi-layer LSTM producing the final hidden state as features."""

    def __init__(
        self,
        vocab_size: int,
        hidden_dim: int = 1500,
        num_layers: int = 2,
        embed_dim: Optional[int] = None,
        rng: RngLike = None,
    ):
        check_positive("vocab_size", vocab_size)
        check_positive("hidden_dim", hidden_dim)
        check_positive("num_layers", num_layers)
        generator = ensure_rng(rng)
        embed_dim = embed_dim or hidden_dim
        self.embedding = Embedding(vocab_size, embed_dim, rng=generator)
        self.cells: List[_LSTMCell] = []
        in_dim = embed_dim
        for _ in range(num_layers):
            self.cells.append(_LSTMCell(in_dim, hidden_dim, generator))
            in_dim = hidden_dim
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers

    def _run(self, token_ids: np.ndarray) -> np.ndarray:
        ids = np.atleast_2d(np.asarray(token_ids, dtype=np.intp))
        batch, seq = ids.shape
        states = [
            (np.zeros((batch, cell.hidden_dim)), np.zeros((batch, cell.hidden_dim)))
            for cell in self.cells
        ]
        embedded = self.embedding(ids)  # (batch, seq, embed)
        outputs = np.empty((batch, seq, self.hidden_dim))
        for t in range(seq):
            x = embedded[:, t]
            for layer, cell in enumerate(self.cells):
                h, c = cell.step(x, states[layer])
                states[layer] = (h, c)
                x = h
            outputs[:, t] = x
        return outputs

    def extract(self, token_ids: np.ndarray) -> np.ndarray:
        return self._run(token_ids)[:, -1]

    def extract_sequence(self, token_ids: np.ndarray) -> np.ndarray:
        return self._run(token_ids)

    def report(self) -> FrontEndReport:
        parameters = self.embedding.parameters + sum(
            cell.parameters for cell in self.cells
        )
        # Per token step: each cell does two dense matmuls (2 FLOPs/MAC).
        flops = sum(
            2.0 * (cell.w_x.size + cell.w_h.size) for cell in self.cells
        )
        return FrontEndReport(parameters=parameters, flops=flops)
