"""XML-CNN front-end (XMLCNN-670K), after Liu et al., SIGIR 2017.

A convolutional text model for extreme multi-label classification:
word embeddings → 1-D convolutions with several filter widths →
dynamic max pooling → a bottleneck fully-connected layer whose output
(hidden 512) feeds the extreme classifier.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.linalg.functional import relu
from repro.models.base import FrontEnd, FrontEndReport
from repro.models.embedding import Embedding
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


class _Conv1D:
    """A width-``w`` 1-D convolution over the sequence axis."""

    def __init__(self, width: int, in_dim: int, filters: int, rng: np.random.Generator):
        scale = 1.0 / np.sqrt(width * in_dim)
        self.kernel = rng.standard_normal((filters, width, in_dim)) * scale
        self.bias = np.zeros(filters)
        self.width = width

    @property
    def parameters(self) -> int:
        return self.kernel.size + self.bias.size

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """``x`` (batch, seq, in_dim) → (batch, seq - w + 1, filters)."""
        batch, seq, in_dim = x.shape
        out_len = seq - self.width + 1
        if out_len <= 0:
            raise ValueError(
                f"sequence length {seq} shorter than filter width {self.width}"
            )
        windows = np.stack(
            [x[:, i : i + out_len] for i in range(self.width)], axis=2
        )  # (batch, out_len, width, in_dim)
        return np.einsum("bowd,fwd->bof", windows, self.kernel) + self.bias


class XMLCNNModel(FrontEnd):
    """Convolutions + dynamic max pooling + bottleneck features."""

    def __init__(
        self,
        vocab_size: int,
        hidden_dim: int = 512,
        embed_dim: int = 128,
        filter_widths: tuple = (2, 4, 8),
        filters_per_width: int = 32,
        pool_chunks: int = 4,
        rng: RngLike = None,
    ):
        check_positive("vocab_size", vocab_size)
        check_positive("hidden_dim", hidden_dim)
        check_positive("filters_per_width", filters_per_width)
        check_positive("pool_chunks", pool_chunks)
        generator = ensure_rng(rng)
        self.embedding = Embedding(vocab_size, embed_dim, rng=generator)
        self.convs: List[_Conv1D] = [
            _Conv1D(width, embed_dim, filters_per_width, generator)
            for width in filter_widths
        ]
        pooled_dim = len(filter_widths) * filters_per_width * pool_chunks
        scale = 1.0 / np.sqrt(pooled_dim)
        self.w_bottleneck = generator.standard_normal((hidden_dim, pooled_dim)) * scale
        self.b_bottleneck = np.zeros(hidden_dim)
        self.pool_chunks = pool_chunks
        self.hidden_dim = hidden_dim

    def _dynamic_max_pool(self, feature_map: np.ndarray) -> np.ndarray:
        """Max over ``pool_chunks`` equal sequence chunks, concatenated."""
        batch, length, filters = feature_map.shape
        chunks = np.array_split(np.arange(length), self.pool_chunks)
        pooled = [
            feature_map[:, chunk].max(axis=1) if chunk.size else
            np.zeros((batch, filters))
            for chunk in chunks
        ]
        return np.concatenate(pooled, axis=-1)

    def extract(self, token_ids: np.ndarray) -> np.ndarray:
        ids = np.atleast_2d(np.asarray(token_ids, dtype=np.intp))
        embedded = self.embedding(ids)
        pooled = [self._dynamic_max_pool(relu(conv(embedded))) for conv in self.convs]
        concatenated = np.concatenate(pooled, axis=-1)
        return relu(concatenated @ self.w_bottleneck.T + self.b_bottleneck)

    def report(self) -> FrontEndReport:
        parameters = (
            self.embedding.parameters
            + sum(conv.parameters for conv in self.convs)
            + self.w_bottleneck.size
            + self.b_bottleneck.size
        )
        # FLOPs for a nominal 64-token document.
        seq = 64
        conv_flops = sum(
            2.0 * conv.kernel.size * max(seq - conv.width + 1, 1)
            for conv in self.convs
        )
        fc_flops = 2.0 * self.w_bottleneck.size
        return FrontEndReport(parameters=parameters, flops=conv_flops + fc_flops)
