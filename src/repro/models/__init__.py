"""Numpy front-end models matching Table 2's inference models.

These are real forward implementations (not stubs): they produce the
hidden vectors ``h`` the classifier consumes, and they report parameter
and operation counts for the Fig. 4 breakdown and the host performance
model.  Weights are synthetically initialized — see DESIGN.md §2 for
why that preserves the evaluation's validity.
"""

from repro.models.base import FrontEnd, FrontEndReport
from repro.models.embedding import Embedding
from repro.models.lstm import LSTMModel
from repro.models.transformer import TransformerModel
from repro.models.gnmt import GNMTModel
from repro.models.xmlcnn import XMLCNNModel
from repro.models.factory import build_front_end

__all__ = [
    "FrontEnd",
    "FrontEndReport",
    "Embedding",
    "LSTMModel",
    "TransformerModel",
    "GNMTModel",
    "XMLCNNModel",
    "build_front_end",
]
