"""Token embedding table shared by the sequence front-ends."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


class Embedding:
    """A dense lookup table mapping token ids to vectors."""

    def __init__(self, vocab_size: int, dim: int, rng: RngLike = None):
        check_positive("vocab_size", vocab_size)
        check_positive("dim", dim)
        generator = ensure_rng(rng)
        self.table = generator.standard_normal((vocab_size, dim)) / np.sqrt(dim)

    @property
    def vocab_size(self) -> int:
        return self.table.shape[0]

    @property
    def dim(self) -> int:
        return self.table.shape[1]

    @property
    def parameters(self) -> int:
        return self.table.size

    def __call__(self, token_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(token_ids, dtype=np.intp)
        if ids.size and (ids.min() < 0 or ids.max() >= self.vocab_size):
            raise ValueError(
                f"token ids out of range [0, {self.vocab_size}): "
                f"[{ids.min()}, {ids.max()}]"
            )
        return self.table[ids]
