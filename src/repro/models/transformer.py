"""A Transformer decoder front-end (Transformer-W268K).

Pre-norm decoder blocks with causal multi-head self-attention and a
GELU feed-forward, matching the adaptive-input Wikitext-103 setup's
shape (hidden 512).  Sinusoidal positions, no dropout (inference only).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.linalg.functional import gelu, softmax
from repro.models.base import FrontEnd, FrontEndReport
from repro.models.embedding import Embedding
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """The standard fixed positional encoding (Vaswani et al. 2017)."""
    positions = np.arange(length)[:, None]
    div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
    encoding = np.zeros((length, dim))
    encoding[:, 0::2] = np.sin(positions * div)
    encoding[:, 1::2] = np.cos(positions * div[: (dim + 1) // 2])
    return encoding


def layer_norm(x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Parameter-free layer normalization over the last axis."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps)


class _DecoderBlock:
    def __init__(self, dim: int, num_heads: int, ffn_dim: int, rng: np.random.Generator):
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {num_heads}")
        scale = 1.0 / np.sqrt(dim)
        self.w_qkv = rng.standard_normal((3 * dim, dim)) * scale
        self.w_out = rng.standard_normal((dim, dim)) * scale
        self.w_ffn1 = rng.standard_normal((ffn_dim, dim)) * scale
        self.w_ffn2 = rng.standard_normal((dim, ffn_dim)) / np.sqrt(ffn_dim)
        self.num_heads = num_heads
        self.dim = dim
        self.head_dim = dim // num_heads

    @property
    def parameters(self) -> int:
        return self.w_qkv.size + self.w_out.size + self.w_ffn1.size + self.w_ffn2.size

    def __call__(self, x: np.ndarray) -> np.ndarray:
        batch, seq, dim = x.shape
        normed = layer_norm(x)
        qkv = normed @ self.w_qkv.T
        q, k, v = np.split(qkv, 3, axis=-1)

        def heads(t: np.ndarray) -> np.ndarray:
            return t.reshape(batch, seq, self.num_heads, self.head_dim).transpose(
                0, 2, 1, 3
            )

        q, k, v = heads(q), heads(k), heads(v)
        scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(self.head_dim)
        causal = np.triu(np.full((seq, seq), -np.inf), k=1)
        attention = softmax(scores + causal, axis=-1)
        context = (attention @ v).transpose(0, 2, 1, 3).reshape(batch, seq, dim)
        x = x + context @ self.w_out.T

        normed = layer_norm(x)
        x = x + gelu(normed @ self.w_ffn1.T) @ self.w_ffn2.T
        return x


class TransformerModel(FrontEnd):
    """Decoder-only Transformer; features are last-position states."""

    def __init__(
        self,
        vocab_size: int,
        hidden_dim: int = 512,
        num_layers: int = 6,
        num_heads: int = 8,
        ffn_multiplier: int = 4,
        rng: RngLike = None,
    ):
        check_positive("vocab_size", vocab_size)
        check_positive("hidden_dim", hidden_dim)
        check_positive("num_layers", num_layers)
        generator = ensure_rng(rng)
        self.embedding = Embedding(vocab_size, hidden_dim, rng=generator)
        self.blocks: List[_DecoderBlock] = [
            _DecoderBlock(hidden_dim, num_heads, ffn_multiplier * hidden_dim, generator)
            for _ in range(num_layers)
        ]
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers

    def _run(self, token_ids: np.ndarray) -> np.ndarray:
        ids = np.atleast_2d(np.asarray(token_ids, dtype=np.intp))
        x = self.embedding(ids) + sinusoidal_positions(ids.shape[1], self.hidden_dim)
        for block in self.blocks:
            x = block(x)
        return layer_norm(x)

    def extract(self, token_ids: np.ndarray) -> np.ndarray:
        return self._run(token_ids)[:, -1]

    def extract_sequence(self, token_ids: np.ndarray) -> np.ndarray:
        return self._run(token_ids)

    def report(self) -> FrontEndReport:
        parameters = self.embedding.parameters + sum(
            block.parameters for block in self.blocks
        )
        # Per-token FLOPs at short decode lengths: dominated by the
        # dense projections (attention score term is seq-dependent and
        # small at XC-relevant context sizes).
        flops = sum(2.0 * block.parameters for block in self.blocks)
        return FrontEndReport(parameters=parameters, flops=flops)
