"""A GNMT-style encoder/decoder front-end (GNMT-E32K).

Google's NMT system (Wu et al. 2016) is a deep LSTM encoder-decoder
with additive attention.  We implement a compact faithful variant: an
LSTM encoder stack, an LSTM decoder stack, and Bahdanau-style additive
attention whose context vector is concatenated to the decoder state and
projected back to ``hidden_dim`` — that projected vector is the feature
the extreme classifier consumes at each decode step.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.linalg.functional import softmax, tanh
from repro.models.base import FrontEnd, FrontEndReport
from repro.models.embedding import Embedding
from repro.models.lstm import _LSTMCell
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


class _AdditiveAttention:
    def __init__(self, dim: int, rng: np.random.Generator):
        scale = 1.0 / np.sqrt(dim)
        self.w_query = rng.standard_normal((dim, dim)) * scale
        self.w_key = rng.standard_normal((dim, dim)) * scale
        self.v = rng.standard_normal(dim) * scale
        self.dim = dim

    @property
    def parameters(self) -> int:
        return self.w_query.size + self.w_key.size + self.v.size

    def __call__(self, query: np.ndarray, memory: np.ndarray) -> np.ndarray:
        """``query`` (batch, dim), ``memory`` (batch, src, dim) → context."""
        projected = tanh(
            query[:, None, :] @ self.w_query.T + memory @ self.w_key.T
        )
        scores = projected @ self.v  # (batch, src)
        weights = softmax(scores, axis=-1)
        return np.einsum("bs,bsd->bd", weights, memory)


class GNMTModel(FrontEnd):
    """Encoder-decoder with attention; decode steps yield classifier features."""

    def __init__(
        self,
        vocab_size: int,
        hidden_dim: int = 1024,
        encoder_layers: int = 2,
        decoder_layers: int = 2,
        rng: RngLike = None,
    ):
        check_positive("vocab_size", vocab_size)
        check_positive("hidden_dim", hidden_dim)
        generator = ensure_rng(rng)
        self.embedding = Embedding(vocab_size, hidden_dim, rng=generator)
        self.encoder: List[_LSTMCell] = [
            _LSTMCell(hidden_dim, hidden_dim, generator) for _ in range(encoder_layers)
        ]
        self.decoder: List[_LSTMCell] = [
            _LSTMCell(hidden_dim, hidden_dim, generator) for _ in range(decoder_layers)
        ]
        self.attention = _AdditiveAttention(hidden_dim, generator)
        scale = 1.0 / np.sqrt(2 * hidden_dim)
        self.w_combine = generator.standard_normal((hidden_dim, 2 * hidden_dim)) * scale
        self.hidden_dim = hidden_dim

    # ------------------------------------------------------------------
    def encode(self, source_ids: np.ndarray) -> np.ndarray:
        """Run the encoder stack; returns memory ``(batch, src, dim)``."""
        ids = np.atleast_2d(np.asarray(source_ids, dtype=np.intp))
        batch, seq = ids.shape
        states = [
            (np.zeros((batch, self.hidden_dim)), np.zeros((batch, self.hidden_dim)))
            for _ in self.encoder
        ]
        embedded = self.embedding(ids)
        memory = np.empty((batch, seq, self.hidden_dim))
        for t in range(seq):
            x = embedded[:, t]
            for layer, cell in enumerate(self.encoder):
                h, c = cell.step(x, states[layer])
                states[layer] = (h, c)
                x = h
            memory[:, t] = x
        return memory

    def decode_step(
        self,
        token_ids: np.ndarray,
        memory: np.ndarray,
        states: Optional[List[Tuple[np.ndarray, np.ndarray]]] = None,
    ) -> Tuple[np.ndarray, List[Tuple[np.ndarray, np.ndarray]]]:
        """One decoder step; returns (features, new_states)."""
        ids = np.asarray(token_ids, dtype=np.intp).reshape(-1)
        batch = ids.shape[0]
        if states is None:
            states = [
                (np.zeros((batch, self.hidden_dim)), np.zeros((batch, self.hidden_dim)))
                for _ in self.decoder
            ]
        x = self.embedding(ids)
        new_states = []
        for layer, cell in enumerate(self.decoder):
            h, c = cell.step(x, states[layer])
            new_states.append((h, c))
            x = h
        context = self.attention(x, memory)
        combined = np.concatenate([x, context], axis=-1)
        features = tanh(combined @ self.w_combine.T)
        return features, new_states

    def extract(self, token_ids: np.ndarray) -> np.ndarray:
        """Translate-like extraction: encode the sequence, run one
        decode step primed with the last token."""
        ids = np.atleast_2d(np.asarray(token_ids, dtype=np.intp))
        memory = self.encode(ids)
        features, _ = self.decode_step(ids[:, -1], memory)
        return features

    def greedy_decode(
        self, source_ids: np.ndarray, start_token: int, steps: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Greedy decoding against a caller-supplied classifier is done
        in :mod:`repro.experiments`; here we return the per-step
        features for a forced prefix of ``start_token`` repeats
        (teacher-forcing harness)."""
        check_positive("steps", steps)
        ids = np.atleast_2d(np.asarray(source_ids, dtype=np.intp))
        memory = self.encode(ids)
        batch = ids.shape[0]
        token = np.full(batch, start_token, dtype=np.intp)
        states = None
        features = np.empty((batch, steps, self.hidden_dim))
        for t in range(steps):
            feats, states = self.decode_step(token, memory, states)
            features[:, t] = feats
        return features, token

    def report(self) -> FrontEndReport:
        parameters = (
            self.embedding.parameters
            + sum(c.parameters for c in self.encoder)
            + sum(c.parameters for c in self.decoder)
            + self.attention.parameters
            + self.w_combine.size
        )
        flops = 2.0 * (
            sum(c.w_x.size + c.w_h.size for c in self.encoder)
            + sum(c.w_x.size + c.w_h.size for c in self.decoder)
            + self.attention.parameters
            + self.w_combine.size
        )
        return FrontEndReport(parameters=parameters, flops=flops)
