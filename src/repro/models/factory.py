"""Build the Table 2 front-end for a workload.

Accuracy experiments never need the paper-size front-ends (the
classifier is what's under study), so the factory accepts a
``vocab_cap`` that bounds the embedding table, and a ``compact`` flag
that shrinks layer counts for fast CI runs while keeping the hidden
dimension — the only front-end property the classifier sees.
"""

from __future__ import annotations

from repro.data.registry import Workload
from repro.models.base import FrontEnd
from repro.models.gnmt import GNMTModel
from repro.models.lstm import LSTMModel
from repro.models.transformer import TransformerModel
from repro.models.xmlcnn import XMLCNNModel
from repro.utils.rng import RngLike, rng_from_labels


def build_front_end(
    workload: Workload,
    vocab_cap: int = 8192,
    compact: bool = True,
    rng: RngLike = None,
) -> FrontEnd:
    """Instantiate the workload's front-end model."""
    vocab = min(workload.num_categories, vocab_cap)
    generator = rng if rng is not None else rng_from_labels(workload.abbr, "front-end")
    if workload.model == "LSTM":
        return LSTMModel(
            vocab_size=vocab,
            hidden_dim=workload.hidden_dim,
            num_layers=1 if compact else 2,
            rng=generator,
        )
    if workload.model == "Transformer":
        return TransformerModel(
            vocab_size=vocab,
            hidden_dim=workload.hidden_dim,
            num_layers=2 if compact else 6,
            rng=generator,
        )
    if workload.model == "GNMT":
        return GNMTModel(
            vocab_size=vocab,
            hidden_dim=workload.hidden_dim,
            encoder_layers=1 if compact else 2,
            decoder_layers=1 if compact else 2,
            rng=generator,
        )
    if workload.model == "XMLCNN":
        return XMLCNNModel(
            vocab_size=vocab, hidden_dim=workload.hidden_dim, rng=generator
        )
    raise ValueError(f"unknown front-end model {workload.model!r}")
