"""Front-end model interface and accounting report."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FrontEndReport:
    """Parameter and operation accounting for one front-end inference.

    ``flops`` is per single inference (one token step for sequence
    models, one sample for XMLCNN) at batch size 1; callers scale by
    batch and sequence length.
    """

    parameters: int
    flops: float

    @property
    def parameter_bytes(self) -> int:
        return self.parameters * 4


class FrontEnd(abc.ABC):
    """A feature extractor producing hidden vectors for the classifier."""

    #: Hidden dimensionality of the produced features.
    hidden_dim: int

    @abc.abstractmethod
    def extract(self, token_ids: np.ndarray) -> np.ndarray:
        """Map integer inputs ``(batch, seq)`` to features ``(batch, hidden_dim)``.

        Sequence models return the last-position hidden state (the
        vector that feeds the classifier at the next-token prediction
        step).
        """

    @abc.abstractmethod
    def report(self) -> FrontEndReport:
        """Parameter/FLOP accounting for Fig. 4 and the host model."""

    def extract_sequence(self, token_ids: np.ndarray) -> np.ndarray:
        """Features for *every* position ``(batch, seq, hidden_dim)``.

        Default falls back to repeated ``extract`` on prefixes, which
        subclasses override with an efficient pass.
        """
        array = np.atleast_2d(np.asarray(token_ids))
        steps = []
        for t in range(1, array.shape[1] + 1):
            steps.append(self.extract(array[:, :t]))
        return np.stack(steps, axis=1)
