#!/usr/bin/env python
"""Quickstart: approximate screening in five steps.

Builds a synthetic extreme classifier, distills a screener against it
(Algorithm 1), and compares screened inference against the exact
classifier: same predictions, a small fraction of the computation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    ApproximateScreeningClassifier,
    ScreeningConfig,
    train_screener,
)
from repro.core.metrics import (
    candidate_recall,
    cost_of_full_classification,
    cost_of_screened_output,
)
from repro.data import make_task


def main() -> None:
    # 1. A structured XC task: 20 000 categories, hidden dim 256.
    task = make_task(num_categories=20_000, hidden_dim=256, rng=7)
    classifier = task.classifier
    print(f"classifier: {classifier}")
    print(f"  weight footprint: {classifier.nbytes / 1e6:.1f} MB")

    # 2. Distill the screener from the model's own hidden vectors.
    features = task.sample_features(1024)
    screener, training = train_screener(
        classifier,
        features,
        config=ScreeningConfig.from_scale(256, scale=0.25, quantization_bits=4),
        solver="lstsq",
        rng=7,
        return_report=True,
    )
    print(f"screener:   {screener}")
    print(f"  parameter scale vs full: {screener.parameter_scale():.3f}")
    print(f"  distillation loss: {training.final_loss:.2f}")

    # 3. Assemble the screened pipeline with a 64-candidate budget.
    model = ApproximateScreeningClassifier(classifier, screener, num_candidates=64)

    # 4. Compare predictions against the exact classifier.
    test, labels = task.sample(256, rng=11)
    exact_logits = classifier.logits(test)
    output = model(test)
    agreement = np.mean(
        np.argmax(exact_logits, axis=1) == np.argmax(output.logits, axis=1)
    )
    print(f"\ntop-1 agreement with exact classifier: {agreement:.3f}")
    print(f"candidate recall@5: {candidate_recall(exact_logits, output, 5):.3f}")
    print(f"outputs computed exactly: {100 * output.exact_fraction:.2f}%")

    # 5. What did that save?
    full = cost_of_full_classification(20_000, 256, batch_size=256)
    screened = cost_of_screened_output(classifier, screener, output)
    print(f"\nFLOP reduction:    {full.flops / screened.flops:6.1f}x")
    print(f"traffic reduction: {full.bytes / screened.bytes:6.1f}x")


if __name__ == "__main__":
    main()
