#!/usr/bin/env python
"""Language modeling with a screened softmax (the LSTM-W33K workload).

Runs an LSTM front-end over token sequences, feeds its hidden states to
a screened extreme classifier, and reports perplexity degradation and
computation savings across candidate budgets — a miniature of the
paper's Fig. 11(b).

Run:  python examples/language_modeling.py
"""

import numpy as np

from repro.core import ApproximateScreeningClassifier, train_screener, ScreeningConfig
from repro.data.registry import get_workload, scaled_task
from repro.metrics import perplexity_from_proba
from repro.models import LSTMModel


def main() -> None:
    workload = get_workload("LSTM-W33K")
    task = scaled_task(workload, scale=16, max_categories=4096)
    vocab = task.num_categories
    print(f"workload: {workload.abbr} (scaled to {vocab} categories, "
          f"hidden {workload.hidden_dim})")

    # A real LSTM front-end; its hidden states are the classifier input.
    lstm = LSTMModel(vocab_size=vocab, hidden_dim=workload.hidden_dim,
                     num_layers=1, rng=3)
    rng = np.random.default_rng(5)
    tokens = rng.integers(0, vocab, size=(16, 8))
    hidden = lstm.extract(tokens)
    print(f"LSTM hidden states: {hidden.shape}")

    # Distillation uses the task's own feature distribution (the paper
    # trains on the original training set's context vectors).
    classifier = task.classifier
    train_features = task.sample_features(1024)
    screener = train_screener(
        classifier, train_features,
        config=ScreeningConfig.from_scale(workload.hidden_dim, 0.25),
        solver="lstsq", rng=3,
    )

    # Evaluate perplexity with exact vs screened softmax.
    eval_features, targets = task.sample(512, rng=9)
    exact_ppl = perplexity_from_proba(
        classifier.predict_proba(eval_features), targets
    )
    print(f"\nexact softmax perplexity: {exact_ppl:.2f}")
    print(f"{'budget':>8} {'ppl':>8} {'vs exact':>9} {'exact %':>8}")
    for fraction in (0.005, 0.02, 0.05, 0.13):
        m = max(1, int(round(vocab * fraction)))
        model = ApproximateScreeningClassifier(classifier, screener,
                                               num_candidates=m)
        output = model(eval_features)
        proba = model.predict_proba(eval_features)
        ppl = perplexity_from_proba(proba, targets)
        print(f"{m:8d} {ppl:8.2f} {ppl / exact_ppl:8.3f}x "
              f"{100 * output.exact_fraction:7.2f}%")


if __name__ == "__main__":
    main()
