#!/usr/bin/env python
"""Scale-out screened classification across nodes (paper Section 8).

The paper notes the design "can scale-out from single-node to
distributed nodes, where each node keeps an approximate screener".
This example shards a classifier over 4 nodes, verifies the
functionally merged predictions match the exact classifier, and sweeps
the cluster performance model to show the node-count crossover.

Run:  python examples/distributed_scaleout.py
"""

import numpy as np

from repro.core import ScreeningConfig
from repro.data import make_task
from repro.data.registry import get_workload
from repro.distributed import ClusterModel, ShardedClassifier


def main() -> None:
    # --- functional: sharded inference matches the exact classifier ---
    task = make_task(num_categories=4000, hidden_dim=64, rng=11)
    sharded = ShardedClassifier(
        task.classifier, num_shards=4,
        config=ScreeningConfig(projection_dim=16),
    )
    sharded.train(task.sample_features(768), candidates_per_shard=16, rng=12)

    features = task.sample_features(64, rng=13)
    agreement = np.mean(
        sharded.predict(features) == task.classifier.predict(features)
    )
    indices, scores = sharded.top_k(features[:2], k=5)
    print(f"4-node sharded inference: top-1 agreement with exact = {agreement:.3f}")
    print(f"global top-5 of row 0: {indices[0].tolist()}")

    # --- performance: node-count sweep on the 10M-category workload ---
    workload = get_workload("S10M")
    cluster = ClusterModel()
    print(f"\nscale-out sweep on {workload.abbr} "
          f"({workload.num_categories:,} categories):")
    print(f"{'nodes':>6} {'node ms':>9} {'reduce µs':>10} {'total ms':>9}")
    for result in cluster.sweep(workload, (1, 2, 4, 8, 16, 32)):
        print(f"{result.nodes:6d} {1e3 * result.node_seconds:9.3f} "
              f"{1e6 * result.reduce_seconds:10.2f} "
              f"{1e3 * result.seconds:9.3f}")


if __name__ == "__main__":
    main()
