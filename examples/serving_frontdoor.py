#!/usr/bin/env python
"""Serve single-request traffic through the micro-batching front door.

Production classifiers receive one request at a time, but the screened
engine earns its savings from batching.  The front door bridges the
two: callers submit single rows, a batcher thread coalesces them under
a size-or-deadline flush policy, and every caller gets back exactly the
row a direct batched call would have produced — plus SLO deadlines and
admission control when the system saturates.

Run:  python examples/serving_frontdoor.py
"""

import numpy as np

from repro.core import ScreeningConfig
from repro.data import make_task
from repro.distributed import ShardedClassifier
from repro.obs import Recorder
from repro.serving import (
    FrontDoor,
    QueueFullError,
    ZipfianMix,
    is_engine_backend,
    run_open_loop,
)


def main() -> None:
    # --- build an engine and put the front door in front of it ---
    task = make_task(num_categories=4000, hidden_dim=32, rng=21)
    model = ShardedClassifier(
        task.classifier, num_shards=2, config=ScreeningConfig(projection_dim=8)
    )
    model.train(task.sample_features(384, rng=22), candidates_per_shard=16, rng=23)
    assert is_engine_backend(model)

    recorder = Recorder()
    with FrontDoor(
        model, max_batch=16, flush_window_s=0.002, recorder=recorder
    ) as door:
        # --- single requests, batched answers ---
        rows = task.sample_features(6, rng=24)
        futures = [door.submit(row, "top_k", k=5) for row in rows]
        for i, future in enumerate(futures):
            reply = future.result(timeout=30)
            indices, _scores = reply.value
            print(
                f"request {i}: top-5 {indices.tolist()} "
                f"(batch of {reply.batch_size}, "
                f"{reply.latency_s * 1e3:.2f} ms end to end)"
            )

        # --- the same answer a direct batched call produces ---
        direct_indices, _ = model.top_k(rows, k=5)
        reply = door.call(rows[0], "top_k", k=5, timeout=30)
        assert np.array_equal(reply.value[0], direct_indices[0])
        print("front-door rows match the direct engine call bit for bit")

        # --- open-loop Zipfian load with a 50 ms SLO ---
        mix = ZipfianMix(hidden_dim=32, pool_size=128, s=1.1, seed=25)
        report = run_open_loop(
            door, mix, rate_rps=300.0, duration_s=1.0, slo_s=0.05
        )
        print(
            f"open loop: {report.offered} offered -> {report.served} served "
            f"at {report.throughput_rps:.0f} rps, "
            f"p50 {report.latency_percentile(50) * 1e3:.2f} ms, "
            f"p99 {report.latency_percentile(99) * 1e3:.2f} ms, "
            f"mean batch {report.mean_batch_size:.1f}, "
            f"{report.shed_deadline} shed on deadline"
        )

        # --- admission control under a deliberately tiny queue ---
    with FrontDoor(model, max_batch=4, flush_window_s=0.1, queue_limit=2) as tiny:
        admitted, shed = 0, 0
        for row in task.sample_features(12, rng=26):
            try:
                tiny.submit(row)
                admitted += 1
            except QueueFullError:
                shed += 1
        print(f"tiny queue: {admitted} admitted, {shed} shed with QueueFullError")

    depth = recorder.snapshot()["gauges"]["serving.queue_depth"]
    flushes = recorder.snapshot()["counters"]
    print(
        f"gauges drained to queue_depth={depth:.0f}; "
        f"{flushes.get('serving.flush_on_size', 0):.0f} size flushes, "
        f"{flushes.get('serving.flush_on_deadline', 0):.0f} window flushes"
    )


if __name__ == "__main__":
    main()
