#!/usr/bin/env python
"""Process-parallel sharded serving with shared-memory parameters.

Builds on ``distributed_scaleout.py``: instead of running the shards
sequentially in one process, ``ShardedClassifier.parallel()`` spawns
one persistent worker process per shard.  Each worker attaches the
shard's classifier and screener planes from a shared-memory segment
(zero-copy — the weights exist once in physical memory no matter how
many workers map them), screens its slice of the category space, and
the host merges the per-shard results through the same reduce path the
sequential backend uses.  The two backends are bit-identical, which
this example checks on every output it prints.

The second half demonstrates the supervision layer: a worker is killed
mid-service and transparently respawned from the still-live shared
segments (bit-identical afterwards), then a degraded-mode fleet keeps
answering with the surviving shards plus a structured report of the
missing category ranges.

Run:  python examples/parallel_serving.py
"""

import time

import numpy as np

from repro.core import ScreeningConfig
from repro.core.pipeline import DegradedOutput
from repro.data import make_task
from repro.distributed import ShardedClassifier
from repro.utils.faults import FaultSpec


def main() -> None:
    task = make_task(num_categories=8000, hidden_dim=64, rng=11)
    sharded = ShardedClassifier(
        task.classifier, num_shards=4,
        config=ScreeningConfig(projection_dim=16),
    )
    sharded.train(task.sample_features(768), candidates_per_shard=16, rng=12)
    features = task.sample_features(64, rng=13)

    sequential = sharded.forward(features)

    start = time.perf_counter()
    with sharded.parallel() as engine:
        startup_ms = 1e3 * (time.perf_counter() - start)
        segments = len(engine.segment_names())
        print(f"fleet: {engine!r}")
        print(f"started {engine.num_shards} workers in {startup_ms:.1f} ms "
              f"({segments} shared-memory segments)")

        parallel = engine.forward(features)
        identical = (
            np.array_equal(parallel.logits, sequential.logits)
            and all(
                np.array_equal(mine, theirs)
                for mine, theirs in zip(
                    parallel.candidates, sequential.candidates
                )
            )
        )
        print(f"parallel output bit-identical to sequential: {identical}")

        indices, scores = engine.top_k(features[:2], k=5)
        seq_indices, _ = sharded.top_k(features[:2], k=5)
        print(f"global top-5 of row 0: {indices[0].tolist()} "
              f"(matches sequential: {np.array_equal(indices, seq_indices)})")

        agreement = np.mean(
            engine.predict(features) == task.classifier.predict(features)
        )
        print(f"top-1 agreement with the exact classifier: {agreement:.3f}")

        repeats = 5
        start = time.perf_counter()
        for _ in range(repeats):
            engine.forward(features)
        parallel_ms = 1e3 * (time.perf_counter() - start) / repeats
        start = time.perf_counter()
        for _ in range(repeats):
            sharded.forward(features)
        sequential_ms = 1e3 * (time.perf_counter() - start) / repeats
        print(f"forward (batch=64): sequential {sequential_ms:.2f} ms, "
              f"parallel {parallel_ms:.2f} ms "
              f"(speedup tracks available cores; see BENCH_parallel.json)")

    print(f"after close: {engine!r}, segments unlinked")

    # --- fault tolerance: respawn ------------------------------------
    print("\n-- supervision: kill a worker mid-service --")
    with sharded.parallel(restart_backoff=0.01) as engine:
        engine.forward(features)
        engine.workers[2].process.kill()
        start = time.perf_counter()
        recovered = engine.forward(features)
        recovery_ms = 1e3 * (time.perf_counter() - start)
        print(f"shard 2 killed; next request answered in {recovery_ms:.1f} ms "
              f"(restarts per shard: {engine.restarts})")
        print(f"post-respawn output bit-identical to sequential: "
              f"{np.array_equal(recovered.logits, sequential.logits)}")

    # --- fault tolerance: graceful degradation -----------------------
    print("\n-- degraded mode: serve with a shard permanently down --")
    # Deterministic injection: shard 1 crashes on every incarnation's
    # first request, so the restart budget drains and the shard is
    # declared dead instead of raising.
    faults = {1: [FaultSpec(kind="kill", at_request=1, persistent=True)]}
    with sharded.parallel(
        degraded=True, max_restarts=1, restart_backoff=0.01, faults=faults
    ) as engine:
        result = engine.forward(features)
        assert isinstance(result, DegradedOutput)
        ranges = [f"[{r.start}, {r.stop})" for r in result.missing_ranges]
        print(f"degraded result: {result.available_fraction:.0%} of "
              f"categories served, missing {', '.join(ranges)}")
        for failure in result.failures:
            print(f"  shard {failure.shard_id}: {failure.kind} "
                  f"(categories [{failure.categories.start}, "
                  f"{failure.categories.stop}))")
        surviving = np.concatenate([
            result.result.logits[:, : 2000], result.result.logits[:, 4000:]
        ], axis=1)
        reference = np.concatenate([
            sequential.logits[:, : 2000], sequential.logits[:, 4000:]
        ], axis=1)
        print(f"surviving columns bit-identical to sequential: "
              f"{np.array_equal(surviving, reference)}; "
              f"missing columns are NaN: "
              f"{bool(np.isnan(result.result.logits[:, 2000:4000]).all())}")


if __name__ == "__main__":
    main()
