#!/usr/bin/env python
"""Process-parallel sharded serving with shared-memory parameters.

Builds on ``distributed_scaleout.py``: instead of running the shards
sequentially in one process, ``ShardedClassifier.parallel()`` spawns
one persistent worker process per shard.  Each worker attaches the
shard's classifier and screener planes from a shared-memory segment
(zero-copy — the weights exist once in physical memory no matter how
many workers map them), screens its slice of the category space, and
the host merges the per-shard results through the same reduce path the
sequential backend uses.  The two backends are bit-identical, which
this example checks on every output it prints.

Run:  python examples/parallel_serving.py
"""

import time

import numpy as np

from repro.core import ScreeningConfig
from repro.data import make_task
from repro.distributed import ShardedClassifier


def main() -> None:
    task = make_task(num_categories=8000, hidden_dim=64, rng=11)
    sharded = ShardedClassifier(
        task.classifier, num_shards=4,
        config=ScreeningConfig(projection_dim=16),
    )
    sharded.train(task.sample_features(768), candidates_per_shard=16, rng=12)
    features = task.sample_features(64, rng=13)

    sequential = sharded.forward(features)

    start = time.perf_counter()
    with sharded.parallel() as engine:
        startup_ms = 1e3 * (time.perf_counter() - start)
        segments = len(engine.segment_names())
        print(f"fleet: {engine!r}")
        print(f"started {engine.num_shards} workers in {startup_ms:.1f} ms "
              f"({segments} shared-memory segments)")

        parallel = engine.forward(features)
        identical = (
            np.array_equal(parallel.logits, sequential.logits)
            and all(
                np.array_equal(mine, theirs)
                for mine, theirs in zip(
                    parallel.candidates, sequential.candidates
                )
            )
        )
        print(f"parallel output bit-identical to sequential: {identical}")

        indices, scores = engine.top_k(features[:2], k=5)
        seq_indices, _ = sharded.top_k(features[:2], k=5)
        print(f"global top-5 of row 0: {indices[0].tolist()} "
              f"(matches sequential: {np.array_equal(indices, seq_indices)})")

        agreement = np.mean(
            engine.predict(features) == task.classifier.predict(features)
        )
        print(f"top-1 agreement with the exact classifier: {agreement:.3f}")

        repeats = 5
        start = time.perf_counter()
        for _ in range(repeats):
            engine.forward(features)
        parallel_ms = 1e3 * (time.perf_counter() - start) / repeats
        start = time.perf_counter()
        for _ in range(repeats):
            sharded.forward(features)
        sequential_ms = 1e3 * (time.perf_counter() - start) / repeats
        print(f"forward (batch=64): sequential {sequential_ms:.2f} ms, "
              f"parallel {parallel_ms:.2f} ms "
              f"(speedup tracks available cores; see BENCH_parallel.json)")

    print(f"after close: {engine!r}, segments unlinked")


if __name__ == "__main__":
    main()
