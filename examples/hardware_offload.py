#!/usr/bin/env python
"""Run classification *through the hardware path*: compiler → ISA →
functional ENMC DIMM.

This example lowers a screened classification to real ENMC instructions
(Table 1), prints the generated assembly, executes it on the functional
DIMM model, and verifies the hardware output matches the numpy pipeline
bit-for-bit — then shows the per-phase performance model for the same
workload at paper scale.

Run:  python examples/hardware_offload.py
"""

import numpy as np

from repro.compiler import ENMCOffload, compile_screened_classification
from repro.core import ApproximateScreeningClassifier, CandidateSelector, train_screener
from repro.core.screener import ScreeningConfig
from repro.data import make_task
from repro.data.registry import get_workload
from repro.enmc import ENMCSimulator
from repro.isa import disassemble
from repro.linalg.topk import calibrate_threshold


def main() -> None:
    # --- functional: compile and execute on the DIMM model ------------
    task = make_task(num_categories=2000, hidden_dim=64, rng=1)
    screener = train_screener(
        task.classifier, task.sample_features(512),
        config=ScreeningConfig(projection_dim=16), solver="lstsq", rng=2,
    )
    threshold = calibrate_threshold(
        screener.approximate_logits(task.sample_features(128)), 32
    )

    feature = task.sample_features(1)[0]
    kernel = compile_screened_classification(
        task.classifier, screener, feature, threshold
    )
    print(f"compiled {kernel.instruction_count} instructions, "
          f"{kernel.plan.num_tiles} weight tiles "
          f"({kernel.plan.rows_per_tile} rows/tile)")
    print("\nfirst 12 instructions:")
    print(disassemble(kernel.program.instructions[:12]))

    offload = ENMCOffload(task.classifier, screener, threshold)
    selector = CandidateSelector(mode="threshold", num_candidates=32,
                                 threshold=threshold)
    software = ApproximateScreeningClassifier(task.classifier, screener,
                                              selector=selector)
    batch = task.sample_features(4)
    hw = offload(batch)
    sw = software(batch)
    max_err = np.abs(hw.output.logits - sw.logits).max()
    print(f"\nhardware vs software max |Δlogit|: {max_err:.2e}")
    trace = hw.traces[0]
    print(f"per-inference: {trace.instructions_executed} issued + "
          f"{trace.generated_instructions} generated instructions, "
          f"{trace.dram_bytes / 1e3:.1f} KB DRAM traffic")

    # --- batched execution: weight tiles loaded once per batch --------
    per_row = offload(batch)
    batched = offload.forward_batched(batch)
    print(f"\nbatch-of-4 DRAM traffic: per-row {per_row.total_dram_bytes / 1e3:.1f} KB, "
          f"batched {batched.total_dram_bytes / 1e3:.1f} KB "
          f"(identical outputs: "
          f"{np.allclose(per_row.output.logits, batched.output.logits)})")

    # --- performance: the same dataflow at paper scale ----------------
    workload = get_workload("Transformer-W268K")
    simulator = ENMCSimulator()
    result = simulator.simulate(
        workload, candidates_per_row=workload.default_candidates
    )
    print(f"\npaper-scale {workload.abbr}:")
    print(f"  screening phase: {1e6 * result.screen.seconds:7.1f} µs "
          f"({result.screen.bound}-bound)")
    print(f"  candidate phase: {1e6 * result.execute.seconds:7.1f} µs "
          f"({result.execute.bound}-bound)")
    print(f"  dual-module total: {1e6 * result.seconds:7.1f} µs "
          f"(serialized would be {1e6 * result.serialized_seconds:.1f} µs)")


if __name__ == "__main__":
    main()
