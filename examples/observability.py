#!/usr/bin/env python
"""Observability: metrics, per-shard latency and Chrome traces.

Serving the screening pipeline is a latency product, and the paper's
own argument is a timing breakdown (Fig. 4) — so the serving stack
carries a first-class observability layer.  By default it is off: every
instrumented component holds the no-op ``NULL_RECORDER``, outputs are
bit-identical and the hot path pays one attribute lookup.  Attaching a
:class:`repro.obs.Recorder` turns on per-phase span histograms,
counters and (optionally) a nested-span tracer whose export loads
straight into ``chrome://tracing`` / Perfetto.

This example instruments both layers:

1. a single-process pipeline — phase spans (project/quantize, screener
   GEMM per column tile, candidate selection, exact recompute) and the
   workspace gauges;
2. a process-parallel fleet — per-shard latency percentiles and the
   supervision counters through ``engine.stats()``, plus a trace file
   and a Prometheus text exposition sample.

Run:  python examples/observability.py
"""

import json
import tempfile

from repro.core import ApproximateScreeningClassifier, ScreeningConfig, train_screener
from repro.data import make_task
from repro.distributed import ShardedClassifier
from repro.obs import Recorder, validate_chrome_events


def main() -> None:
    task = make_task(num_categories=12_000, hidden_dim=64, rng=11)
    train = task.sample_features(512)
    features = task.sample_features(64, rng=13)

    # ------------------------------------------------------------------
    # 1. Single-process pipeline: spans on the screening hot path.
    # ------------------------------------------------------------------
    screener = train_screener(
        task.classifier, train,
        config=ScreeningConfig(projection_dim=16), rng=12,
    )
    recorder = Recorder(trace=True)
    model = ApproximateScreeningClassifier(
        task.classifier, screener, num_candidates=24, recorder=recorder,
    )
    for _ in range(5):
        model.forward_streaming(features, block_categories=4096)

    snapshot = recorder.snapshot()
    print("pipeline phase timings (seconds, 5 streaming requests):")
    for name, summary in snapshot["histograms"].items():
        if name.startswith("span."):
            print(
                f"  {name:<32} count={summary['count']:<3} "
                f"p50={summary['p50']:.2e} p99={summary['p99']:.2e}"
            )
    gauges = snapshot["gauges"]
    print(
        f"workspace: {gauges['pipeline.workspace_bytes'] / 1e6:.2f} MB in "
        f"{int(gauges['pipeline.workspace_allocations'])} buffers "
        "(flat across steady-state requests)"
    )
    counters = snapshot["counters"]
    print(
        f"screened {int(counters['pipeline.rows'])} rows into "
        f"{int(counters['pipeline.exact_candidates'])} exact candidates\n"
    )

    # ------------------------------------------------------------------
    # 2. Parallel fleet: per-shard latency + supervision counters.
    # ------------------------------------------------------------------
    sharded = ShardedClassifier(
        task.classifier, num_shards=3,
        config=ScreeningConfig(projection_dim=16),
    )
    sharded.train(train, candidates_per_shard=8, rng=12)

    with sharded.parallel(trace=True) as engine:
        for _ in range(8):
            engine.forward_streaming(features)
        stats = engine.stats()

        print(f"fleet: {engine.num_shards} shards, "
              f"{stats['requests']} requests served")
        print(f"supervision: retries={stats['retries']} "
              f"respawns={stats['respawns']} "
              f"degraded={stats['degraded_requests']} "
              f"stale_replies={stats['stale_replies']}")
        for shard in stats["shards"]:
            latency = shard["latency_s"]
            print(
                f"  shard {shard['shard_id']} "
                f"[{shard['categories'][0]:>6}, {shard['categories'][1]:>6}): "
                f"{int(shard['requests'])} answered, "
                f"p50={latency['p50'] * 1e3:6.2f}ms "
                f"p95={latency['p95'] * 1e3:6.2f}ms "
                f"p99={latency['p99'] * 1e3:6.2f}ms"
            )

        # Chrome trace export (open in chrome://tracing or Perfetto).
        with tempfile.NamedTemporaryFile(
            mode="r", suffix=".json", delete=False
        ) as handle:
            events = engine.write_trace(handle.name)
            trace_path = handle.name
        validate_chrome_events(json.load(open(trace_path)))
        print(f"\nwrote {events} trace events -> {trace_path}")

        # Prometheus text exposition, ready for a scraper.
        exposition = engine.recorder.render_prometheus()
        sample = [
            line for line in exposition.splitlines()
            if line.startswith(("parallel_requests", "workers_posted"))
        ]
        print("prometheus sample:")
        for line in sample:
            print(f"  {line}")


if __name__ == "__main__":
    main()
