#!/usr/bin/env python
"""Neural machine translation with a screened output layer (GNMT-E32K).

A GNMT-style encoder/decoder produces per-step hidden vectors; the
screened classifier picks each output token.  We greedy-decode with the
exact classifier and with screening at several candidate budgets and
report BLEU between the two decodes — translation-quality preservation,
the paper's Fig. 11(a).

Run:  python examples/translation.py
"""

import numpy as np

from repro.core import ApproximateScreeningClassifier, ScreeningConfig, train_screener
from repro.data.registry import get_workload, scaled_task
from repro.metrics import bleu
from repro.models import GNMTModel


def main() -> None:
    workload = get_workload("GNMT-E32K")
    task = scaled_task(workload, scale=16, max_categories=4096)
    vocab = task.num_categories
    print(f"workload: {workload.abbr} (scaled to {vocab} target vocabulary)")

    # The GNMT front-end: encode a source sentence, expose decode steps.
    gnmt = GNMTModel(vocab_size=vocab, hidden_dim=workload.hidden_dim,
                     encoder_layers=1, decoder_layers=1, rng=6)
    rng = np.random.default_rng(10)
    source = rng.integers(0, vocab, size=(2, 6))
    memory = gnmt.encode(source)
    print(f"encoder memory: {memory.shape}")
    features, _ = gnmt.decode_step(source[:, -1], memory)
    print(f"decoder feature: {features.shape}")

    classifier = task.classifier
    screener = train_screener(
        classifier, task.sample_features(1024),
        config=ScreeningConfig.from_scale(workload.hidden_dim, 0.25),
        solver="lstsq", rng=6,
    )

    # Greedy "decode": per step the task provides the hidden vector and
    # both classifiers pick a token; BLEU compares the two streams.
    num_sentences, length = 24, 12
    eval_rng = np.random.default_rng(12)
    references, screened_decodes = [], {}
    budgets = [max(1, int(vocab * f)) for f in (0.002, 0.01, 0.05)]
    for m in budgets:
        screened_decodes[m] = []
    for _ in range(num_sentences):
        steps = task.sample_features(length, rng=eval_rng)
        references.append(classifier.predict(steps).tolist())
        for m in budgets:
            model = ApproximateScreeningClassifier(classifier, screener,
                                                   num_candidates=m)
            screened_decodes[m].append(model.predict(steps).tolist())

    print(f"\n{'budget':>8} {'BLEU vs exact decode':>22}")
    for m in budgets:
        score = bleu(screened_decodes[m], references, smoothing=1.0)
        print(f"{m:8d} {score:22.4f}")

    # Beam search through the real GNMT decoder with the screened
    # output layer (the paper's "top-K ... beam search size" use case).
    from repro.core import beam_search_decode

    memory = gnmt.encode(source[:1])
    model = ApproximateScreeningClassifier(
        classifier, screener, num_candidates=budgets[-1]
    )

    def step(tokens, state):
        tokens = np.asarray(tokens).reshape(-1)
        mem = np.broadcast_to(memory, (tokens.shape[0],) + memory.shape[1:])
        return gnmt.decode_step(tokens, mem, state)

    beams = beam_search_decode(step, model, start_token=1, steps=8,
                               beam_width=4)
    print("\nbeam search (width 4) through GNMT + screened softmax:")
    for rank in range(beams.tokens.shape[1]):
        tokens = beams.tokens[0, rank].tolist()
        print(f"  beam {rank}: score {beams.scores[0, rank]:8.3f}  {tokens}")


if __name__ == "__main__":
    main()
