#!/usr/bin/env python
"""Multi-label recommendation with screening (the XMLCNN-670K workload).

Extreme multi-label classification with sigmoid outputs: the XMLCNN
front-end embeds a document, the screened classifier ranks a (scaled)
Amazon-670K-style label space, and we compare P@1/P@5 against exact
inference — the paper's Fig. 11(d) scenario, where screening earns its
largest savings.

Run:  python examples/recommendation.py
"""

import numpy as np

from repro.core import ApproximateScreeningClassifier, ScreeningConfig, train_screener
from repro.data.registry import get_workload, scaled_task
from repro.metrics import precision_at_k
from repro.models import XMLCNNModel


def main() -> None:
    workload = get_workload("XMLCNN-670K")
    task = scaled_task(workload, scale=64, max_categories=12_288)
    print(f"workload: {workload.abbr} (scaled to {task.num_categories} labels)")

    # The CNN front-end: embeds token sequences to 512-d features.
    xmlcnn = XMLCNNModel(vocab_size=4096, hidden_dim=workload.hidden_dim, rng=2)
    rng = np.random.default_rng(4)
    documents = rng.integers(0, 4096, size=(8, 64))
    features = xmlcnn.extract(documents)
    print(f"XMLCNN features: {features.shape}")

    classifier = task.classifier  # sigmoid normalization
    screener = train_screener(
        classifier,
        task.sample_features(1024),
        config=ScreeningConfig.from_scale(workload.hidden_dim, 0.25),
        solver="lstsq",
        rng=2,
    )

    eval_features, labels = task.sample(256, rng=8)
    exact_scores = classifier.predict_proba(eval_features)
    exact_p1 = precision_at_k(exact_scores, labels, k=1)
    exact_p5 = precision_at_k(exact_scores, labels, k=5)
    print(f"\nexact inference:    P@1 {exact_p1:.3f}  P@5 {exact_p5:.3f}")

    # The paper reduces XMLCNN's candidates ~50×; sweep around that.
    for divisor in (200, 50, 20):
        m = max(5, task.num_categories // divisor)
        model = ApproximateScreeningClassifier(classifier, screener,
                                               num_candidates=m)
        scores = model.predict_proba(eval_features)
        p1 = precision_at_k(scores, labels, k=1)
        p5 = precision_at_k(scores, labels, k=5)
        print(f"screened (l/{divisor:>3}): P@1 {p1:.3f}  P@5 {p5:.3f}  "
              f"(m={m}, {100 * m / task.num_categories:.1f}% of labels)")


if __name__ == "__main__":
    main()
