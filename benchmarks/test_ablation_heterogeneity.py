"""Ablation: heterogeneous (INT4+FP32) vs homogeneous on-DIMM compute.

This isolates the paper's core architecture claim (Section 7.2): at the
same area budget, a homogeneous FP32 design cannot sustain the
screening phase's throughput, while ENMC's 128-lane INT4 array keeps it
memory-bound.
"""

from repro.data.registry import iter_workloads
from repro.enmc.config import ENMCConfig
from repro.enmc.simulator import ENMCSimulator
from repro.utils.tables import render_table

#: Table 5: one FP32 MAC costs ~11× the area of one INT4 MAC, so the
#: iso-area homogeneous alternative to (16 FP32 + 128 INT4) is ~27 FP32
#: lanes doing everything.
ISO_AREA_FP32_LANES = 27


def test_ablation_heterogeneous_compute(once):
    def sweep():
        hetero = ENMCSimulator(ENMCConfig())
        homo = ENMCSimulator(
            ENMCConfig(int4_macs=ISO_AREA_FP32_LANES, fp32_macs=ISO_AREA_FP32_LANES)
        )
        rows = []
        for workload in iter_workloads():
            m = workload.default_candidates
            t_het = hetero.simulate(workload, candidates_per_row=m)
            t_hom = homo.simulate(workload, candidates_per_row=m)
            rows.append(
                (
                    workload.abbr,
                    round(1e6 * t_het.seconds, 1),
                    round(1e6 * t_hom.seconds, 1),
                    round(t_hom.seconds / t_het.seconds, 2),
                    t_het.screen.bound,
                    t_hom.screen.bound,
                )
            )
        return rows

    rows = once(sweep)
    print()
    print(render_table(
        ["Workload", "Hetero µs", "Homo µs", "Slowdown",
         "Hetero screen bound", "Homo screen bound"],
        rows,
        title="Ablation: heterogeneous INT4+FP32 vs iso-area homogeneous FP32",
    ))
    by_workload = {row[0]: row for row in rows}
    for row in rows:
        # Heterogeneity never loses, and the screening phase always
        # flips from memory-bound (ENMC) to compute-bound (homogeneous).
        assert row[3] > 1.0
        assert row[4] == "memory"
        assert row[5] == "compute"
    # Where screening dominates (small candidate budgets: NMT top-K,
    # recommendation P@k) the win is large; the perplexity workloads'
    # huge candidate budgets shift work to the FP32 phase, where the
    # iso-area homogeneous design's extra lanes claw time back.
    assert by_workload["XMLCNN-670K"][3] > 2.5
    assert by_workload["GNMT-E32K"][3] > 1.8


def test_ablation_dual_module_pipeline(once):
    """The second ENMC feature: Screener/Executor overlap.  Measured as
    pipelined vs serialized latency on the paper workloads."""

    def sweep():
        simulator = ENMCSimulator()
        rows = []
        for workload in iter_workloads():
            m = workload.default_candidates
            result = simulator.simulate(workload, candidates_per_row=m)
            rows.append(
                (
                    workload.abbr,
                    round(1e6 * result.seconds, 1),
                    round(1e6 * result.serialized_seconds, 1),
                    round(result.serialized_seconds / result.seconds, 3),
                )
            )
        return rows

    rows = once(sweep)
    print()
    print(render_table(
        ["Workload", "Pipelined µs", "Serialized µs", "Gain"],
        rows,
        title="Ablation: dual-module pipelining",
    ))
    for row in rows:
        assert row[3] >= 1.0
    # At least one workload gains >15% from the overlap.
    assert any(row[3] > 1.15 for row in rows)
