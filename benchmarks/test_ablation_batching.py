"""Ablation: batched vs per-row compiled execution (functional DIMM).

Measures actual DRAM traffic from the functional model as batch size
grows — the weight-reuse effect behind the paper's batch-1/2/4 sweep.
"""

from repro.compiler import ENMCOffload
from repro.core import ScreeningConfig, train_screener
from repro.data import make_task
from repro.utils.tables import render_table


def test_ablation_batched_traffic(once):
    task = make_task(num_categories=1500, hidden_dim=48, rng=21)
    screener = train_screener(
        task.classifier, task.sample_features(384),
        config=ScreeningConfig(projection_dim=12), solver="lstsq", rng=22,
    )
    # High threshold isolates screening-weight traffic.
    offload = ENMCOffload(task.classifier, screener, threshold=1e6)

    def sweep():
        rows = []
        for batch in (1, 2, 4, 8):
            features = task.sample_features(batch, rng=23)
            per_row = offload.forward(features)
            batched = offload.forward_batched(features)
            rows.append(
                (
                    batch,
                    round(per_row.total_dram_bytes / 1e3, 1),
                    round(batched.total_dram_bytes / 1e3, 1),
                    round(per_row.total_dram_bytes / batched.total_dram_bytes, 2),
                )
            )
        return rows

    rows = once(sweep)
    print()
    print(render_table(
        ["Batch", "Per-row KB", "Batched KB", "Reduction"],
        rows,
        title="Ablation: batched weight reuse (measured DIMM traffic)",
    ))
    # Per-row traffic grows ~linearly with batch; batched stays ~flat.
    assert rows[-1][3] > 3.0  # ≥3× reduction at batch 8
    batched_growth = rows[-1][2] / rows[0][2]
    assert batched_growth < 2.0
