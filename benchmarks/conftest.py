"""Benchmark-suite configuration.

Each benchmark regenerates one paper table/figure via the modules in
:mod:`repro.experiments` and reports the same rows the paper plots
(printed under ``-s``; always attached to the benchmark's ``extra_info``).
Timing-wise, heavy experiments run once per benchmark (pedantic mode)
— the interesting output is the experiment result, not the wall time.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture()
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
