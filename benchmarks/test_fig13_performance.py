"""Fig. 13 — architecture performance comparison benchmark."""

from repro.experiments import fig13_performance


def test_fig13_performance(once):
    rows = once(fig13_performance.run)
    print()
    print(fig13_performance.report())
    summary = fig13_performance.summarize(rows)

    # Paper headline shapes:
    # AS on CPU ≈ 7.3× average.
    assert 3.0 < summary["CPU+AS"] < 15.0
    # NMP baselines 10.2-20.7× over CPU.
    for scheme in ("NDA", "Chameleon", "TensorDIMM"):
        assert 5.0 < summary[scheme] < 40.0
    # ENMC ≈ 56.5× total, and 2.7×/3.5×/5.6× over TD/NDA/Chameleon.
    assert 30.0 < summary["ENMC"] < 150.0
    assert 2.0 < summary["ENMC"] / summary["TensorDIMM"] < 6.0
    assert summary["ENMC"] / summary["Chameleon"] > summary["ENMC"] / summary["NDA"]
    assert summary["ENMC"] / summary["NDA"] > summary["ENMC"] / summary["TensorDIMM"]

    # Batch-1 latency advantage is the largest (paper: 55.5×-600.7×).
    batch1 = [r for r in rows if r.batch_size == 1]
    batch4 = [r for r in rows if r.batch_size == 4]
    for b1, b4 in zip(batch1, batch4):
        assert b1.speedup("ENMC") > b4.speedup("ENMC")
