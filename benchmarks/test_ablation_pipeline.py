"""Ablation: event-driven tile pipeline vs the analytic steady state.

The Fig. 13/14/15 experiments use the analytic dual-module model; this
benchmark validates its steady-state assumption against the
discrete-event tile schedule, including the bursty-candidate case the
closed form cannot see.
"""

import numpy as np

from repro.enmc import DualModulePipeline, ENMCSimulator
from repro.enmc.config import DEFAULT_CONFIG
from repro.data.registry import get_workload
from repro.utils.tables import render_table


def test_ablation_pipeline_vs_analytic(once):
    workload = get_workload("Transformer-W268K")

    def compare():
        simulator = ENMCSimulator(DEFAULT_CONFIG)
        pipeline = DualModulePipeline(DEFAULT_CONFIG)
        shards = DEFAULT_CONFIG.total_ranks
        l_shard = -(-workload.num_categories // shards)
        rows = []
        for m in (1000, 8000, 32000):
            analytic = simulator.simulate(workload, candidates_per_row=m)
            per_rank_candidates = -(-m // shards)
            event = pipeline.run_uniform(
                num_categories=l_shard,
                hidden_dim=workload.hidden_dim,
                total_candidates=per_rank_candidates,
                tile_rows=512,
            )
            event_seconds = event.seconds(DEFAULT_CONFIG.frequency_hz)
            rows.append(
                (
                    m,
                    round(1e6 * analytic.seconds, 2),
                    round(1e6 * event_seconds, 2),
                    round(event_seconds / analytic.seconds, 3),
                    round(event.overlap_efficiency, 3),
                )
            )
        return rows

    rows = once(compare)
    print()
    print(render_table(
        ["Candidates m", "Analytic µs", "Event-driven µs", "Ratio",
         "Overlap eff."],
        rows,
        title="Ablation: analytic steady state vs event-driven tile pipeline",
    ))
    # The models must agree within ~2× across regimes (they make
    # different ramp/granularity assumptions but share resource pools).
    for row in rows:
        assert 0.4 < row[3] < 2.5


def test_ablation_candidate_burstiness(once):
    """Skewed candidate arrival (realistic — screened scores cluster)
    vs uniform spread at the same total work."""
    pipeline = DualModulePipeline(DEFAULT_CONFIG)

    def compare():
        rows = []
        for skew in (0.0, 1.0, 2.0):
            result = pipeline.run_uniform(
                num_categories=16_384,
                hidden_dim=512,
                total_candidates=4096,
                tile_rows=512,
                candidate_skew=skew,
                rng=np.random.default_rng(1),
            )
            rows.append(
                (skew, round(result.total_cycles),
                 round(result.overlap_efficiency, 3))
            )
        return rows

    rows = once(compare)
    print()
    print(render_table(
        ["Candidate skew", "Makespan (cycles)", "Overlap eff."], rows,
        title="Ablation: candidate burstiness vs pipeline overlap",
    ))
    # Total work identical; makespan must not improve with skew.
    makespans = [row[1] for row in rows]
    assert makespans[0] <= makespans[-1] * 1.05
