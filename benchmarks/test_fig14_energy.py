"""Fig. 14 — energy breakdown benchmark."""

from repro.experiments import fig14_energy


def test_fig14_energy(once):
    rows = once(fig14_energy.run)
    print()
    print(fig14_energy.report())
    summary = fig14_energy.summarize(rows)

    # Paper: 5.0× vs TensorDIMM, 8.4× vs TensorDIMM-Large (Large burns
    # more logic power for the same memory-bound runtime).
    assert 3.0 < summary["TensorDIMM"] < 20.0
    assert summary["TensorDIMM-Large"] > summary["TensorDIMM"]

    # DRAM static energy reduction (paper: 9.3× vs TensorDIMM).
    by_workload = {}
    for row in rows:
        by_workload.setdefault(row.workload, {})[row.scheme] = row.breakdown
    for schemes in by_workload.values():
        static_ratio = (
            schemes["TensorDIMM"].dram_static / schemes["ENMC"].dram_static
        )
        assert static_ratio > 3.0

    # DRAM access dominates TensorDIMM's budget (full-weight streaming).
    for schemes in by_workload.values():
        td = schemes["TensorDIMM"]
        assert td.dram_access > td.dram_static
