"""Fig. 11 — quality vs speedup benchmark (all 4 workloads, 3 methods).

This is the heaviest benchmark: it materializes four scaled tasks,
distills screeners, and evaluates AS/SVD/FGD at several candidate
budgets.  Paper shapes asserted:

* AS reaches ≥11× (NMT) and ≥14× (recommendation) speedup with ≥99%
  quality retention;
* AS dominates SVD-softmax at matched budgets (SVD pays the d×d
  transform — "4× more" overhead);
* FGD collapses on perplexity tasks (no tail estimates).
"""

from repro.experiments import fig11_quality
from repro.experiments.fig11_quality import DEFAULT_FRACTIONS


def test_fig11_quality_tradeoff(once):
    points = once(
        fig11_quality.run,
        fractions=DEFAULT_FRACTIONS,
        scale=48,
        max_categories=8192,
    )
    print()
    rows = [
        (p.workload, p.method, p.candidate_fraction,
         round(p.quality_retention, 4), round(p.speedup, 2))
        for p in points
    ]
    from repro.utils.tables import render_table

    print(render_table(
        ["Workload", "Method", "Frac", "Retention", "Speedup"], rows,
        title="Fig. 11 (benchmark run)",
    ))

    def best_as(workload, min_retention):
        return max(
            (p.speedup for p in points
             if p.workload == workload and p.method == "AS"
             and p.quality_retention >= min_retention),
            default=0.0,
        )

    # NMT: ~11.8× with no BLEU loss (paper).
    assert best_as("GNMT-E32K", 0.99) > 8.0
    # Recommendation: ~17.4× with ≤0.5% drop (paper).
    assert best_as("XMLCNN-670K", 0.99) > 10.0
    # LM tasks: 5.7-6.3× preserving perplexity (paper).
    assert best_as("LSTM-W33K", 0.95) > 4.0
    assert best_as("Transformer-W268K", 0.95) > 4.0

    # AS beats SVD at matched budgets on every workload.
    for workload in {p.workload for p in points}:
        for fraction in DEFAULT_FRACTIONS:
            as_point = next(
                p for p in points
                if p.workload == workload and p.method == "AS"
                and p.candidate_fraction == fraction
            )
            svd_point = next(
                p for p in points
                if p.workload == workload and p.method == "SVD"
                and p.candidate_fraction == fraction
            )
            assert as_point.speedup > svd_point.speedup

    # FGD collapses on perplexity.
    lm_fgd = [
        p for p in points
        if p.method == "FGD" and p.quality_metric == "perplexity"
    ]
    assert all(p.quality_retention < 0.7 for p in lm_fgd)
