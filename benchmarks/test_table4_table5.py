"""Tables 4 and 5 — area/power configuration benchmarks."""

from repro.experiments import table4_budget, table5_area_power
from repro.energy.area import enmc_totals


def test_table4_budget(once):
    table = once(table4_budget.run)
    print()
    print(table4_budget.report())
    assert table4_budget.budget_spread() < 1.2
    # ENMC fits inside the budget envelope of the baselines.
    areas = {name: ap.area_mm2 for name, (_, ap) in table.items()}
    assert min(areas.values()) <= areas["ENMC"] <= max(areas.values())


def test_table5_area_power(once):
    components = once(table5_area_power.run)
    print()
    print(table5_area_power.report())
    totals = enmc_totals()
    assert abs(totals.area_mm2 - 0.442) < 1e-3
    assert abs(totals.power_mw - 285.4) < 0.1
    # The INT4 array is ~11× cheaper than the FP32 array per Table 5.
    assert components["FP32 MAC"].area_mm2 / components["INT4 MAC"].area_mm2 > 8
