"""Fig. 12 — screening sensitivity benchmark."""

from repro.experiments import fig12_sensitivity


def test_fig12a_parameter_scale(once):
    points = once(
        fig12_sensitivity.run_parameter_scales, "Transformer-W268K", task_scale=48
    )
    print()
    print(fig12_sensitivity.report(task_scale=48))
    errors = [p.relative_error for p in points]
    # Error decreases with scale and saturates near the paper's 0.25.
    assert errors[0] > errors[2]
    quarter = next(p for p in points if p.parameter_scale == 0.25)
    half = next(p for p in points if p.parameter_scale == 0.5)
    assert quarter.relative_error < 1.5 * half.relative_error + 0.02
    assert quarter.recall_at_1 > 0.95


def test_fig12b_quantization(once):
    points = once(
        fig12_sensitivity.run_quantization_levels, "Transformer-W268K", task_scale=48
    )
    by_bits = {p.quantization_bits: p for p in points}
    # INT4 ≈ FP32 (the paper's claim); INT2 degrades.
    assert by_bits[4].relative_error < by_bits[None].relative_error * 1.5 + 0.02
    assert by_bits[2].relative_error > by_bits[4].relative_error
    assert by_bits[4].recall_at_1 > 0.95
