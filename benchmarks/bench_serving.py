#!/usr/bin/env python
"""Benchmark: the serving front door under open-loop Zipfian load.

Drives single-request traffic through :class:`repro.serving.FrontDoor`
over a sharded engine and maps the **throughput vs tail-latency**
trade-off the micro-batch flush window controls: a wider window
coalesces bigger batches (higher sustainable throughput) at the cost of
queueing delay in the p99.  For each window setting the generator
offers Poisson arrivals at several fractions of the backend's measured
batch capacity and records served throughput, latency percentiles,
achieved batch sizes and shed counts; a closed-loop run per window
records saturated throughput at fixed concurrency.

Open-loop arrivals are the honest protocol here: the generator does
not slow down when the server queues, so queueing delay lands in the
recorded percentiles instead of silently throttling the offered load
(coordinated omission).

Run as a script (``make bench-serving``); writes ``BENCH_serving.json``.
``--smoke`` shrinks the model, rates and durations for CI.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import List

import numpy as np

from repro.core import ScreeningConfig
from repro.data import make_task
from repro.distributed import ShardedClassifier
from repro.serving import FrontDoor, ZipfianMix, run_closed_loop, run_open_loop

NUM_CATEGORIES = 20_000
HIDDEN_DIM = 64
PROJECTION_DIM = 16
CANDIDATES_PER_SHARD = 32
NUM_SHARDS = 2
MAX_BATCH = 32
QUEUE_LIMIT = 512

#: The knob under study: size-or-deadline flush windows, seconds.
FLUSH_WINDOWS_S = (0.0005, 0.002, 0.008)

#: Offered load as fractions of the measured batch-mode capacity.
LOAD_FRACTIONS = (0.25, 0.5, 0.75)

ZIPF_POOL = 512
ZIPF_S = 1.1

DURATION_S = 2.0
SMOKE_DURATION_S = 0.3
CLOSED_CONCURRENCY = 8
CLOSED_REQUESTS = 200
SMOKE_CLOSED_REQUESTS = 25


def build_backend(smoke: bool) -> ShardedClassifier:
    num_categories = 2_000 if smoke else NUM_CATEGORIES
    task = make_task(num_categories=num_categories, hidden_dim=HIDDEN_DIM, rng=7)
    train_features = task.sample_features(256 if smoke else 512, rng=9)
    model = ShardedClassifier(
        task.classifier,
        num_shards=NUM_SHARDS,
        config=ScreeningConfig(projection_dim=PROJECTION_DIM),
    )
    model.train(train_features, candidates_per_shard=CANDIDATES_PER_SHARD, rng=10)
    return model


def measure_capacity_rps(backend, batch: int = MAX_BATCH) -> float:
    """Rows/second the backend sustains in pure batch mode — the ceiling
    any front-door configuration is measured against."""
    rng = np.random.default_rng(3)
    features = rng.standard_normal((batch, HIDDEN_DIM))
    backend.forward(features)  # warm-up
    samples: List[float] = []
    for _ in range(5):
        start = time.perf_counter()
        backend.forward(features)
        samples.append(time.perf_counter() - start)
    return batch / min(samples)


def run(smoke: bool = False) -> dict:
    backend = build_backend(smoke)
    mix = ZipfianMix(
        hidden_dim=HIDDEN_DIM, pool_size=ZIPF_POOL, s=ZIPF_S, seed=11
    )
    capacity_rps = measure_capacity_rps(backend)
    duration = SMOKE_DURATION_S if smoke else DURATION_S
    closed_requests = SMOKE_CLOSED_REQUESTS if smoke else CLOSED_REQUESTS
    # Keep the offered rates sane on slow hosts: at least 50 rps so a
    # smoke run still exercises coalescing, at most 2000 rps so the
    # generator thread itself is never the bottleneck.
    rates = []
    for fraction in LOAD_FRACTIONS:
        rate = float(np.clip(capacity_rps * fraction, 50.0, 2000.0))
        if rate not in rates:  # clamping can collapse fractions together
            rates.append(rate)

    # Warm the whole path (BLAS kernels, thread machinery, allocator)
    # before anything is recorded — otherwise the first point of the
    # first window pays one-off costs as queueing delay.
    with FrontDoor(
        backend, max_batch=MAX_BATCH, flush_window_s=FLUSH_WINDOWS_S[0]
    ) as door:
        run_open_loop(door, mix, rate_rps=rates[0], duration_s=0.2, seed=13)

    windows = []
    for window_s in FLUSH_WINDOWS_S:
        points = []
        for rate in rates:
            with FrontDoor(
                backend,
                max_batch=MAX_BATCH,
                flush_window_s=window_s,
                queue_limit=QUEUE_LIMIT,
            ) as door:
                report = run_open_loop(
                    door,
                    mix,
                    rate_rps=rate,
                    duration_s=duration,
                    seed=13,
                )
            summary = report.summary()
            summary["offered_rps"] = round(rate, 1)
            points.append({k: round(v, 4) for k, v in summary.items()})
            print(
                f"window={window_s * 1e3:6.2f}ms rate={rate:7.1f}rps "
                f"served={summary['served']:5.0f} "
                f"p50={summary['p50_ms']:7.2f}ms p99={summary['p99_ms']:7.2f}ms "
                f"batch={summary['mean_batch_size']:5.2f}",
                flush=True,
            )

        with FrontDoor(
            backend,
            max_batch=MAX_BATCH,
            flush_window_s=window_s,
            queue_limit=QUEUE_LIMIT,
        ) as door:
            closed = run_closed_loop(
                door,
                mix,
                concurrency=CLOSED_CONCURRENCY,
                requests_per_worker=closed_requests,
            )
        closed_summary = {k: round(v, 4) for k, v in closed.summary().items()}
        print(
            f"window={window_s * 1e3:6.2f}ms closed-loop "
            f"throughput={closed_summary['throughput_rps']:8.1f}rps "
            f"p99={closed_summary['p99_ms']:7.2f}ms",
            flush=True,
        )
        windows.append(
            {
                "flush_window_s": window_s,
                "open_loop": points,
                "closed_loop": closed_summary,
            }
        )

    return {
        "benchmark": "serving front door: micro-batch window sweep",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count() or 1,
        },
        "config": {
            "num_categories": 2_000 if smoke else NUM_CATEGORIES,
            "hidden_dim": HIDDEN_DIM,
            "num_shards": NUM_SHARDS,
            "max_batch": MAX_BATCH,
            "queue_limit": QUEUE_LIMIT,
            "zipf_pool": ZIPF_POOL,
            "zipf_s": ZIPF_S,
            "arrivals": "open-loop poisson + closed-loop",
            "duration_s": duration,
            "load_fractions": list(LOAD_FRACTIONS),
            "smoke": smoke,
        },
        "backend_capacity_rps": round(capacity_rps, 1),
        "windows": windows,
    }


def main() -> int:
    argv = sys.argv[1:]
    smoke = "--smoke" in argv
    positional = [a for a in argv if not a.startswith("--")]
    output_path = positional[0] if positional else "BENCH_serving.json"

    report = run(smoke=smoke)
    with open(output_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    widest = report["windows"][-1]
    tightest = report["windows"][0]
    print(
        f"\nheadline: {len(report['windows'])} window settings swept; "
        f"closed-loop throughput "
        f"{tightest['closed_loop']['throughput_rps']:.0f}rps at "
        f"{tightest['flush_window_s'] * 1e3:.2f}ms window vs "
        f"{widest['closed_loop']['throughput_rps']:.0f}rps at "
        f"{widest['flush_window_s'] * 1e3:.2f}ms -> {output_path}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
