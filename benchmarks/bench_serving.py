#!/usr/bin/env python
"""Benchmark: the serving front door under open-loop Zipfian load.

Drives single-request traffic through :class:`repro.serving.FrontDoor`
over a sharded engine and maps the **throughput vs tail-latency**
trade-off the micro-batch flush window controls: a wider window
coalesces bigger batches (higher sustainable throughput) at the cost of
queueing delay in the p99.  For each window setting the generator
offers Poisson arrivals at several fractions of the backend's measured
batch capacity and records served throughput, latency percentiles,
achieved batch sizes and shed counts; a closed-loop run per window
records saturated throughput at fixed concurrency.

Open-loop arrivals are the honest protocol here: the generator does
not slow down when the server queues, so queueing delay lands in the
recorded percentiles instead of silently throttling the offered load
(coordinated omission).

``--zipf`` (``make bench-serving-zipf``) runs the Zipfian-aware serving
comparison instead: **uniform** sharding vs a **skew-balanced** plan
built from observed candidate frequencies vs skew-balanced **plus
hot-shard replicas and the quantized result cache**, all through the
process-parallel engine behind the front door, merged into the same
JSON under a ``"skew"`` key.  Per-shard latency histograms come from a
live ``repro.obs`` recorder and the report carries the answered-vs-
requests reconciliation and an honest ``core_bound`` flag (on a host
with fewer cores than workers the parallel configs time-share one CPU,
so the p99 comparison measures scheduling, not balance).

``--elastic`` (``make bench-serving-elastic``) runs the elastic-scaling
comparison: a **static** fleet provisioned up front from
``suggest_replicas`` vs an **elastic** fleet that starts at one replica
per shard and lets the :class:`~repro.distributed.AutoScaler` follow a
**drifting** Zipf mix (the hot head rotates mid-run), both on the same
worker budget; merged under an ``"elastic"`` key with scale-event
accounting (scale-ups/-downs, re-plans) and the answered-vs-requests
reconciliation.

Run as a script (``make bench-serving``); writes ``BENCH_serving.json``.
``--smoke`` shrinks the model, rates and durations for CI.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import List

import numpy as np

from repro.core import ScreeningConfig
from repro.core.candidates import CandidateSelector
from repro.data import make_task
from repro.distributed import (
    AutoScaler,
    ShardPlan,
    ShardedClassifier,
    observed_category_frequencies,
)
from repro.obs import Recorder
from repro.serving import (
    DriftingZipfianMix,
    FrontDoor,
    ResultCache,
    ZipfianMix,
    run_closed_loop,
    run_open_loop,
)

NUM_CATEGORIES = 20_000
HIDDEN_DIM = 64
PROJECTION_DIM = 16
CANDIDATES_PER_SHARD = 32
NUM_SHARDS = 2
MAX_BATCH = 32
QUEUE_LIMIT = 512

#: The knob under study: size-or-deadline flush windows, seconds.
FLUSH_WINDOWS_S = (0.0005, 0.002, 0.008)

#: Offered load as fractions of the measured batch-mode capacity.
LOAD_FRACTIONS = (0.25, 0.5, 0.75)

ZIPF_POOL = 512
ZIPF_S = 1.1

DURATION_S = 2.0
SMOKE_DURATION_S = 0.3
CLOSED_CONCURRENCY = 8
CLOSED_REQUESTS = 200
SMOKE_CLOSED_REQUESTS = 25

# --- Zipfian-aware serving comparison (--zipf) ------------------------

ZIPF_NUM_CATEGORIES = 12_000
ZIPF_SMOKE_CATEGORIES = 1_200
ZIPF_NUM_SHARDS = 4
#: Extra replica processes spread over the hot shards via
#: ShardPlan.suggest_replicas.
ZIPF_EXTRA_WORKERS = 2
ZIPF_CACHE_CAPACITY = 1024
ZIPF_OPEN_FRACTION = 0.6
ZIPF_CLOSED_REQUESTS = 120
ZIPF_SMOKE_CLOSED_REQUESTS = 20

# --- Elastic replica scaling comparison (--elastic) -------------------

#: Drifting mix: rotate the Zipf head every this many samples.  The
#: full run models a few *sustained* regime changes (a quarter-pool
#: head jump every ~2K requests), not continuous churn: every process
#: spawn/stop stalls the batcher for the requests in flight, so on the
#: p99-gated comparison the acting-tick rate must stay well under 1%
#: of requests.  The smoke run rotates fast over ~240 requests purely
#: to prove the loop fires at all.
ELASTIC_SHIFT_EVERY = 2048
ELASTIC_SMOKE_SHIFT_EVERY = 16
ELASTIC_CLOSED_REQUESTS = 640
ELASTIC_SMOKE_CLOSED_REQUESTS = 30
#: Autoscaler cadence, same logic: long windows and a drift threshold
#: a head jump clears but per-window sampling noise does not.
ELASTIC_INTERVAL_REQUESTS = 160
ELASTIC_SMOKE_INTERVAL_REQUESTS = 8
ELASTIC_DRIFT_THRESHOLD = 0.3
ELASTIC_SMOKE_DRIFT_THRESHOLD = 0.15
ELASTIC_MAX_REPLICAS = 3


def build_backend(smoke: bool) -> ShardedClassifier:
    num_categories = 2_000 if smoke else NUM_CATEGORIES
    task = make_task(num_categories=num_categories, hidden_dim=HIDDEN_DIM, rng=7)
    train_features = task.sample_features(256 if smoke else 512, rng=9)
    model = ShardedClassifier(
        task.classifier,
        num_shards=NUM_SHARDS,
        config=ScreeningConfig(projection_dim=PROJECTION_DIM),
    )
    model.train(train_features, candidates_per_shard=CANDIDATES_PER_SHARD, rng=10)
    return model


def measure_capacity_rps(backend, batch: int = MAX_BATCH) -> float:
    """Rows/second the backend sustains in pure batch mode — the ceiling
    any front-door configuration is measured against."""
    rng = np.random.default_rng(3)
    features = rng.standard_normal((batch, HIDDEN_DIM))
    backend.forward(features)  # warm-up
    samples: List[float] = []
    for _ in range(5):
        start = time.perf_counter()
        backend.forward(features)
        samples.append(time.perf_counter() - start)
    return batch / min(samples)


def run(smoke: bool = False) -> dict:
    backend = build_backend(smoke)
    mix = ZipfianMix(
        hidden_dim=HIDDEN_DIM, pool_size=ZIPF_POOL, s=ZIPF_S, seed=11
    )
    capacity_rps = measure_capacity_rps(backend)
    duration = SMOKE_DURATION_S if smoke else DURATION_S
    closed_requests = SMOKE_CLOSED_REQUESTS if smoke else CLOSED_REQUESTS
    # Keep the offered rates sane on slow hosts: at least 50 rps so a
    # smoke run still exercises coalescing, at most 2000 rps so the
    # generator thread itself is never the bottleneck.
    rates = []
    for fraction in LOAD_FRACTIONS:
        rate = float(np.clip(capacity_rps * fraction, 50.0, 2000.0))
        if rate not in rates:  # clamping can collapse fractions together
            rates.append(rate)

    # Warm the whole path (BLAS kernels, thread machinery, allocator)
    # before anything is recorded — otherwise the first point of the
    # first window pays one-off costs as queueing delay.
    with FrontDoor(
        backend, max_batch=MAX_BATCH, flush_window_s=FLUSH_WINDOWS_S[0]
    ) as door:
        run_open_loop(door, mix, rate_rps=rates[0], duration_s=0.2, seed=13)

    windows = []
    for window_s in FLUSH_WINDOWS_S:
        points = []
        for rate in rates:
            with FrontDoor(
                backend,
                max_batch=MAX_BATCH,
                flush_window_s=window_s,
                queue_limit=QUEUE_LIMIT,
            ) as door:
                report = run_open_loop(
                    door,
                    mix,
                    rate_rps=rate,
                    duration_s=duration,
                    seed=13,
                )
            summary = report.summary()
            summary["offered_rps"] = round(rate, 1)
            points.append({k: round(v, 4) for k, v in summary.items()})
            print(
                f"window={window_s * 1e3:6.2f}ms rate={rate:7.1f}rps "
                f"served={summary['served']:5.0f} "
                f"p50={summary['p50_ms']:7.2f}ms p99={summary['p99_ms']:7.2f}ms "
                f"batch={summary['mean_batch_size']:5.2f}",
                flush=True,
            )

        with FrontDoor(
            backend,
            max_batch=MAX_BATCH,
            flush_window_s=window_s,
            queue_limit=QUEUE_LIMIT,
        ) as door:
            closed = run_closed_loop(
                door,
                mix,
                concurrency=CLOSED_CONCURRENCY,
                requests_per_worker=closed_requests,
            )
        closed_summary = {k: round(v, 4) for k, v in closed.summary().items()}
        print(
            f"window={window_s * 1e3:6.2f}ms closed-loop "
            f"throughput={closed_summary['throughput_rps']:8.1f}rps "
            f"p99={closed_summary['p99_ms']:7.2f}ms",
            flush=True,
        )
        windows.append(
            {
                "flush_window_s": window_s,
                "open_loop": points,
                "closed_loop": closed_summary,
            }
        )

    return {
        "benchmark": "serving front door: micro-batch window sweep",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count() or 1,
        },
        "config": {
            "num_categories": 2_000 if smoke else NUM_CATEGORIES,
            "hidden_dim": HIDDEN_DIM,
            "num_shards": NUM_SHARDS,
            "max_batch": MAX_BATCH,
            "queue_limit": QUEUE_LIMIT,
            "zipf_pool": ZIPF_POOL,
            "zipf_s": ZIPF_S,
            "arrivals": "open-loop poisson + closed-loop",
            "duration_s": duration,
            "load_fractions": list(LOAD_FRACTIONS),
            "smoke": smoke,
        },
        "backend_capacity_rps": round(capacity_rps, 1),
        "windows": windows,
    }


# ----------------------------------------------------------------------
# Zipfian-aware serving: uniform vs skew-balanced vs replicas+cache
# ----------------------------------------------------------------------


def train_skew_model(task, plan, train_features, calibration):
    """A sharded model over ``plan`` with threshold candidate selectors.

    Threshold selection is what makes skew *visible*: per-shard work
    tracks how many candidates the shard's stripe produces under the
    query mix, instead of being pinned to a fixed top-m per shard.
    """
    model = ShardedClassifier(
        task.classifier,
        plan=plan,
        config=ScreeningConfig(projection_dim=PROJECTION_DIM),
    )
    model.train(train_features, candidates_per_shard=CANDIDATES_PER_SHARD, rng=10)
    for shard in model.shards:
        selector = CandidateSelector(
            mode="threshold", num_candidates=CANDIDATES_PER_SHARD
        )
        selector.calibrate(shard.screener.approximate_logits(calibration))
        shard.selector = selector
    return model


def observe_mix_frequencies(model, mix) -> np.ndarray:
    """Per-category candidate frequencies under the production mix.

    One warmup forward per pool row, weighted by the row's arrival
    probability — exactly the signal :meth:`ShardPlan.balanced` wants.
    """
    outputs = [model.forward(row) for row in mix.pool]
    return observed_category_frequencies(
        outputs, model.num_categories, weights=mix.probabilities
    )


def measure_config(name, model, mix, *, rate_rps, duration_s, closed_requests,
                   replicas=None, cache=None):
    """Serve the mix through one engine configuration; return its block."""
    recorder = Recorder()
    if cache is not None:
        cache.recorder = recorder
    with model.parallel(replicas=replicas, recorder=recorder) as engine:
        with FrontDoor(
            engine,
            max_batch=MAX_BATCH,
            flush_window_s=0.002,
            queue_limit=QUEUE_LIMIT,
            cache=cache,
            recorder=recorder,
        ) as door:
            open_report = run_open_loop(
                door, mix, rate_rps=rate_rps, duration_s=duration_s, seed=17
            )
            closed_report = run_closed_loop(
                door,
                mix,
                concurrency=CLOSED_CONCURRENCY,
                requests_per_worker=closed_requests,
            )
            door_stats = door.stats()
        engine_stats = engine.stats()

    plan = model.plan
    shards = []
    reconciled = True
    for shard_stats in engine_stats["shards"]:
        shard_id = shard_stats["shard_id"]
        reconciled = reconciled and (
            shard_stats["answered"] == engine_stats["requests"]
        )
        latency = {
            key: (round(value, 6) if isinstance(value, float) else value)
            for key, value in shard_stats["latency_s"].items()
        }
        shards.append(
            {
                "shard": shard_id,
                "categories": len(model.ranges[shard_id]),
                "planned_load": round(plan.loads[shard_id], 4),
                "replicas": shard_stats["replicas"],
                "answered": shard_stats["answered"],
                "latency_s": latency,
            }
        )

    block = {
        "name": name,
        "plan": {
            "source": plan.source,
            "sizes": [len(r) for r in plan.ranges],
            "loads": [round(load, 4) for load in plan.loads],
            "imbalance": round(plan.imbalance, 4),
        },
        "replica_counts": engine_stats["replica_counts"],
        "open_loop": {
            k: round(v, 4) for k, v in open_report.summary().items()
        },
        "closed_loop": {
            k: round(v, 4) for k, v in closed_report.summary().items()
        },
        "engine": {
            "requests": engine_stats["requests"],
            "failovers": engine_stats["failovers"],
            "degraded_requests": engine_stats["degraded_requests"],
            "answered_reconciles": reconciled,
            "shards": shards,
        },
        "frontdoor": {
            "submitted": door_stats["submitted"],
            "served": door_stats["served"],
            "cached_replies": door_stats["cached_replies"],
        },
    }
    if cache is not None:
        block["cache"] = cache.stats()
    print(
        f"{name:24s} open p99={block['open_loop']['p99_ms']:8.2f}ms "
        f"closed rps={block['closed_loop']['throughput_rps']:8.1f} "
        f"p99={block['closed_loop']['p99_ms']:8.2f}ms "
        f"cached={door_stats['cached_replies']}",
        flush=True,
    )
    return block


def run_zipf(smoke: bool = False) -> dict:
    num_categories = ZIPF_SMOKE_CATEGORIES if smoke else ZIPF_NUM_CATEGORIES
    duration = SMOKE_DURATION_S if smoke else DURATION_S
    closed_requests = ZIPF_SMOKE_CLOSED_REQUESTS if smoke else ZIPF_CLOSED_REQUESTS

    task = make_task(num_categories=num_categories, hidden_dim=HIDDEN_DIM, rng=7)
    train_features = task.sample_features(256 if smoke else 512, rng=9)
    calibration = task.sample_features(128 if smoke else 256, rng=8)
    mix = ZipfianMix(
        hidden_dim=HIDDEN_DIM,
        pool_size=128 if smoke else ZIPF_POOL,
        s=ZIPF_S,
        seed=11,
    )

    uniform_plan = ShardPlan.uniform(num_categories, ZIPF_NUM_SHARDS)
    uniform_model = train_skew_model(task, uniform_plan, train_features, calibration)

    # Observe where the candidate mass actually lands under the mix,
    # then rebalance the shard boundaries around it.
    frequencies = observe_mix_frequencies(uniform_model, mix)
    balanced_plan = ShardPlan.balanced(frequencies, ZIPF_NUM_SHARDS)
    balanced_model = train_skew_model(
        task, balanced_plan, train_features, calibration
    )
    replicas = balanced_plan.suggest_replicas(ZIPF_EXTRA_WORKERS)

    capacity_rps = measure_capacity_rps(uniform_model)
    rate = float(np.clip(capacity_rps * ZIPF_OPEN_FRACTION, 50.0, 2000.0))

    # Fewer cores than worker processes means every parallel config
    # time-shares one CPU and the comparison measures the scheduler,
    # not the shard balance — say so instead of overclaiming.
    workers_needed = ZIPF_NUM_SHARDS + ZIPF_EXTRA_WORKERS
    cpus = os.cpu_count() or 1
    core_bound = cpus < workers_needed

    configs = [
        measure_config(
            "uniform",
            uniform_model,
            mix,
            rate_rps=rate,
            duration_s=duration,
            closed_requests=closed_requests,
        ),
        measure_config(
            "balanced",
            balanced_model,
            mix,
            rate_rps=rate,
            duration_s=duration,
            closed_requests=closed_requests,
        ),
        measure_config(
            "balanced+replicas+cache",
            balanced_model,
            mix,
            rate_rps=rate,
            duration_s=duration,
            closed_requests=closed_requests,
            replicas=replicas,
            cache=ResultCache(capacity=ZIPF_CACHE_CAPACITY),
        ),
    ]

    uniform_p99 = configs[0]["closed_loop"]["p99_ms"]
    final_p99 = configs[-1]["closed_loop"]["p99_ms"]
    cache_stats = configs[-1]["cache"]
    headline = {
        "uniform_p99_ms": uniform_p99,
        "balanced_p99_ms": configs[1]["closed_loop"]["p99_ms"],
        "replicated_cached_p99_ms": final_p99,
        "improved_p99": bool(final_p99 < uniform_p99),
        "cache_hit_rate": round(cache_stats["hit_rate"], 4),
        "core_bound": core_bound,
    }
    print(
        f"\nzipf headline: p99 {uniform_p99:.2f}ms (uniform) -> "
        f"{final_p99:.2f}ms (balanced+replicas+cache), "
        f"cache hit rate {cache_stats['hit_rate']:.0%}"
        + (" [core-bound host: comparison not load-balance-limited]"
           if core_bound else ""),
        flush=True,
    )

    return {
        "benchmark": "zipfian-aware serving: uniform vs balanced vs replicas+cache",
        "config": {
            "num_categories": num_categories,
            "hidden_dim": HIDDEN_DIM,
            "num_shards": ZIPF_NUM_SHARDS,
            "extra_workers": ZIPF_EXTRA_WORKERS,
            "suggested_replicas": {str(k): v for k, v in sorted(replicas.items())},
            "cache_capacity": ZIPF_CACHE_CAPACITY,
            "zipf_pool": 128 if smoke else ZIPF_POOL,
            "zipf_s": ZIPF_S,
            "open_loop_rate_rps": round(rate, 1),
            "closed_concurrency": CLOSED_CONCURRENCY,
            "closed_requests_per_worker": closed_requests,
            "selector": "threshold",
            "smoke": smoke,
        },
        "machine": {
            "cpus": cpus,
            "workers_needed": workers_needed,
        },
        "core_bound": core_bound,
        "backend_capacity_rps": round(capacity_rps, 1),
        "frequency_imbalance_uniform": round(
            max(
                float(frequencies[r.start : r.stop].sum())
                for r in uniform_plan.ranges
            )
            / (float(frequencies.sum()) / ZIPF_NUM_SHARDS),
            4,
        ),
        "configs": configs,
        "headline": headline,
    }


# ----------------------------------------------------------------------
# Elastic replica scaling: static fleet vs autoscaler, drifting mix
# ----------------------------------------------------------------------


def measure_elastic_config(name, model, mix, *, closed_requests,
                           replicas=None, autoscaler=None):
    """One closed-loop drifting-Zipf run; returns its report block.

    The front door's batcher thread drives ``autoscale_tick`` between
    micro-batches (the production wiring), so the elastic config's
    scale events happen exactly where they would in serving.
    """
    recorder = Recorder()
    with model.parallel(
        replicas=replicas, autoscaler=autoscaler, recorder=recorder
    ) as engine:
        with FrontDoor(
            engine,
            max_batch=MAX_BATCH,
            flush_window_s=0.002,
            queue_limit=QUEUE_LIMIT,
            recorder=recorder,
            autoscale_interval_s=0.01,
        ) as door:
            closed_report = run_closed_loop(
                door,
                mix,
                concurrency=CLOSED_CONCURRENCY,
                requests_per_worker=closed_requests,
            )
            door_stats = door.stats()
        engine_stats = engine.stats()

    reconciled = all(
        shard["answered"] == engine_stats["requests"]
        for shard in engine_stats["shards"]
    )
    block = {
        "name": name,
        "replica_counts_initial": (
            [replicas.get(sid, 1) for sid in range(model.num_shards)]
            if isinstance(replicas, dict)
            else [replicas or 1] * model.num_shards
        ),
        "replica_counts_final": engine_stats["replica_counts"],
        "closed_loop": {
            k: round(v, 4) for k, v in closed_report.summary().items()
        },
        "engine": {
            "requests": engine_stats["requests"],
            "scale_ups": engine_stats["scale_ups"],
            "scale_downs": engine_stats["scale_downs"],
            "replans": engine_stats["replans"],
            "failovers": engine_stats["failovers"],
            "answered_reconciles": reconciled,
        },
        "frontdoor": {
            "submitted": door_stats["submitted"],
            "served": door_stats["served"],
            "autoscale_ticks": door_stats["autoscale_ticks"],
            "autoscale_errors": door_stats["autoscale_errors"],
        },
        "mix": {
            "samples": mix.samples_drawn,
            "shifts_applied": mix.shifts_applied,
        },
    }
    print(
        f"{name:10s} closed rps={block['closed_loop']['throughput_rps']:8.1f} "
        f"p99={block['closed_loop']['p99_ms']:8.2f}ms "
        f"replicas {block['replica_counts_initial']} -> "
        f"{block['replica_counts_final']} "
        f"scale_ups={block['engine']['scale_ups']} "
        f"replans={block['engine']['replans']}",
        flush=True,
    )
    return block


def run_elastic(smoke: bool = False) -> dict:
    """Static suggested-replica fleet vs elastic autoscaling fleet
    under a drifting Zipf mix, equal worker budget."""
    num_categories = ZIPF_SMOKE_CATEGORIES if smoke else ZIPF_NUM_CATEGORIES
    closed_requests = (
        ELASTIC_SMOKE_CLOSED_REQUESTS if smoke else ELASTIC_CLOSED_REQUESTS
    )
    shift_every = ELASTIC_SMOKE_SHIFT_EVERY if smoke else ELASTIC_SHIFT_EVERY
    interval_requests = (
        ELASTIC_SMOKE_INTERVAL_REQUESTS if smoke else ELASTIC_INTERVAL_REQUESTS
    )
    drift_threshold = (
        ELASTIC_SMOKE_DRIFT_THRESHOLD if smoke else ELASTIC_DRIFT_THRESHOLD
    )
    pool_size = 128 if smoke else ZIPF_POOL

    task = make_task(num_categories=num_categories, hidden_dim=HIDDEN_DIM, rng=7)
    train_features = task.sample_features(256 if smoke else 512, rng=9)
    calibration = task.sample_features(128 if smoke else 256, rng=8)

    # Size the plan on the UN-drifted mix — the histogram at fleet
    # start — then serve the drifting one; that gap is exactly what
    # the autoscaler exists to close.
    sizing_mix = ZipfianMix(
        hidden_dim=HIDDEN_DIM, pool_size=pool_size, s=ZIPF_S, seed=11
    )
    uniform_plan = ShardPlan.uniform(num_categories, ZIPF_NUM_SHARDS)
    uniform_model = train_skew_model(
        task, uniform_plan, train_features, calibration
    )
    frequencies = observe_mix_frequencies(uniform_model, sizing_mix)
    balanced_plan = ShardPlan.balanced(frequencies, ZIPF_NUM_SHARDS)
    model = train_skew_model(task, balanced_plan, train_features, calibration)
    static_replicas = balanced_plan.suggest_replicas(ZIPF_EXTRA_WORKERS)

    budget = ZIPF_NUM_SHARDS + ZIPF_EXTRA_WORKERS
    cpus = os.cpu_count() or 1
    core_bound = cpus < budget

    def drifting_mix():
        return DriftingZipfianMix(
            hidden_dim=HIDDEN_DIM,
            pool_size=pool_size,
            s=ZIPF_S,
            seed=11,
            shift_every=shift_every,
        )

    static = measure_elastic_config(
        "static",
        model,
        drifting_mix(),
        closed_requests=closed_requests,
        replicas=static_replicas,
    )
    # The elastic fleet starts one worker short of the budget and must
    # discover where the drifting load lands: the first re-plan sizes
    # the allocation to the FULL budget from observed loads, so it
    # always spends the reserve on the shard the drift actually hit
    # (guaranteed >= 1 scale-up) and keeps reconciling from there.
    elastic_start = balanced_plan.suggest_replicas(ZIPF_EXTRA_WORKERS - 1)
    elastic = measure_elastic_config(
        "elastic",
        model,
        drifting_mix(),
        closed_requests=closed_requests,
        replicas=elastic_start,
        autoscaler=AutoScaler(
            interval_requests=interval_requests,
            drift_threshold=drift_threshold,
            max_total_workers=budget,
            max_replicas=ELASTIC_MAX_REPLICAS,
        ),
    )

    static_p99 = static["closed_loop"]["p99_ms"]
    elastic_p99 = elastic["closed_loop"]["p99_ms"]
    headline = {
        "static_p99_ms": static_p99,
        "elastic_p99_ms": elastic_p99,
        "p99_no_worse": bool(elastic_p99 <= static_p99 * 1.05),
        "scale_ups": elastic["engine"]["scale_ups"],
        "scale_downs": elastic["engine"]["scale_downs"],
        "replans": elastic["engine"]["replans"],
        "answered_reconciles": bool(
            static["engine"]["answered_reconciles"]
            and elastic["engine"]["answered_reconciles"]
        ),
        "core_bound": core_bound,
    }
    print(
        f"\nelastic headline: p99 {static_p99:.2f}ms (static) vs "
        f"{elastic_p99:.2f}ms (elastic), "
        f"{headline['scale_ups']} scale-ups, "
        f"{headline['replans']} re-plans"
        + (" [core-bound host: p99 comparison measures scheduling]"
           if core_bound else ""),
        flush=True,
    )

    return {
        "benchmark": "elastic replica scaling: static vs autoscaler, drifting zipf",
        "config": {
            "num_categories": num_categories,
            "hidden_dim": HIDDEN_DIM,
            "num_shards": ZIPF_NUM_SHARDS,
            "worker_budget": budget,
            "static_replicas": {
                str(k): v for k, v in sorted(static_replicas.items())
            },
            "zipf_pool": pool_size,
            "zipf_s": ZIPF_S,
            "shift_every": shift_every,
            "closed_concurrency": CLOSED_CONCURRENCY,
            "closed_requests_per_worker": closed_requests,
            "autoscaler": {
                "interval_requests": interval_requests,
                "drift_threshold": drift_threshold,
                "max_total_workers": budget,
                "max_replicas": ELASTIC_MAX_REPLICAS,
            },
            "selector": "threshold",
            "smoke": smoke,
        },
        "machine": {"cpus": cpus, "workers_needed": budget},
        "core_bound": core_bound,
        "configs": [static, elastic],
        "headline": headline,
    }


def main() -> int:
    argv = sys.argv[1:]
    smoke = "--smoke" in argv
    zipf = "--zipf" in argv
    elastic = "--elastic" in argv
    positional = [a for a in argv if not a.startswith("--")]
    output_path = positional[0] if positional else "BENCH_serving.json"

    if elastic:
        # Merge the elastic comparison into the existing report (same
        # pattern as --zipf): other blocks are not re-run.
        report = {}
        if os.path.exists(output_path):
            with open(output_path) as handle:
                report = json.load(handle)
        report["elastic"] = run_elastic(smoke=smoke)
        with open(output_path, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        headline = report["elastic"]["headline"]
        print(
            f"\nheadline: elastic comparison merged under 'elastic' -> "
            f"{output_path} (scale_ups={headline['scale_ups']}, "
            f"replans={headline['replans']}, "
            f"p99_no_worse={headline['p99_no_worse']})"
        )
        return 0

    if zipf:
        # Merge the skew comparison into the existing report (same
        # pattern as bench_parallel --faults): the window sweep is not
        # re-run.
        report = {}
        if os.path.exists(output_path):
            with open(output_path) as handle:
                report = json.load(handle)
        report["skew"] = run_zipf(smoke=smoke)
        with open(output_path, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        headline = report["skew"]["headline"]
        print(
            f"\nheadline: zipfian comparison merged under 'skew' -> "
            f"{output_path} (improved_p99={headline['improved_p99']}, "
            f"core_bound={headline['core_bound']})"
        )
        return 0

    report = run(smoke=smoke)
    if os.path.exists(output_path):
        with open(output_path) as handle:
            previous = json.load(handle)
        for key in ("skew", "elastic"):
            if key in previous:
                report[key] = previous[key]
    with open(output_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    widest = report["windows"][-1]
    tightest = report["windows"][0]
    print(
        f"\nheadline: {len(report['windows'])} window settings swept; "
        f"closed-loop throughput "
        f"{tightest['closed_loop']['throughput_rps']:.0f}rps at "
        f"{tightest['flush_window_s'] * 1e3:.2f}ms window vs "
        f"{widest['closed_loop']['throughput_rps']:.0f}rps at "
        f"{widest['flush_window_s'] * 1e3:.2f}ms -> {output_path}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
