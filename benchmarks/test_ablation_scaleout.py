"""Extension benchmark: distributed scale-out (paper Section 8).

Sweeps node counts for the large synthetic workloads and reports the
node/reduce split — the crossover where the top-k reduce stops the
scaling.
"""

from repro.data.registry import get_workload
from repro.distributed import ClusterModel
from repro.distributed.cluster import NetworkModel
from repro.utils.tables import render_table


def test_scaleout_sweep(once):
    workload = get_workload("S100M")
    cluster = ClusterModel()

    def sweep():
        return cluster.sweep(workload, (1, 2, 4, 8, 16, 32, 64))

    results = once(sweep)
    print()
    print(render_table(
        ["Nodes", "Node ms", "Reduce µs", "Total ms", "Reduce frac"],
        [
            (r.nodes, round(1e3 * r.node_seconds, 3),
             round(1e6 * r.reduce_seconds, 2),
             round(1e3 * r.seconds, 3), round(r.reduce_fraction, 4))
            for r in results
        ],
        title="Scale-out sweep on S100M (per-node screeners + top-k reduce)",
    ))
    # Near-linear node scaling while the reduce is cheap.
    assert results[3].node_seconds < results[0].node_seconds / 6
    # Reduce fraction grows monotonically with node count.
    fractions = [r.reduce_fraction for r in results]
    assert fractions == sorted(fractions)


def test_scaleout_slow_fabric_crossover(once):
    """On a slow fabric the reduce dominates early — scale-out stalls."""
    workload = get_workload("S10M")
    slow = ClusterModel(network=NetworkModel(latency_s=500e-6,
                                             bandwidth=1e9))

    def sweep():
        return slow.sweep(workload, (1, 8, 64))

    results = once(sweep)
    totals = [r.seconds for r in results]
    print()
    print(render_table(
        ["Nodes", "Total ms", "Reduce frac"],
        [(r.nodes, round(1e3 * r.seconds, 3), round(r.reduce_fraction, 3))
         for r in results],
        title="Scale-out on a slow fabric: reduce-bound crossover",
    ))
    # 64 nodes are barely better (or worse) than 8 on this fabric.
    assert totals[2] > 0.5 * totals[1]
    assert results[2].reduce_fraction > 0.5
