#!/usr/bin/env python
"""Benchmark: process-parallel sharded serving vs the sequential backend.

Times ``ShardedClassifier.forward`` / ``top_k`` against the same model
served through :class:`ParallelShardedEngine` (one worker process per
shard, parameters in shared memory), at extreme ``l`` and the serving
batch size.  Also times the engine's one-off costs (fleet startup,
first-request page-faulting) since a serving deployment pays them once.

Honesty note: process parallelism buys wall-clock only when shards run
on distinct cores.  The report records ``cpus`` (``os.cpu_count()``)
and, when the host has fewer cores than shards, the measured "speedup"
is really scatter/IPC overhead — the numbers are recorded as measured,
not as hoped.  On a multi-core host the expected headline at 4 workers
is the near-linear shard scaling the paper's Section 8 model predicts.

Run as a script (``make bench-parallel``); writes
``BENCH_parallel.json``.  ``--faults`` (``make bench-parallel-faults``)
instead drives a deterministic fault schedule (kill, delay past the
deadline, wedge, raise) through a degraded-mode fleet and records
availability and latency-under-faults into the same JSON under a
``"faults"`` key; ``--smoke`` shrinks the scenario for CI.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Callable, List

import numpy as np

from repro.core import ScreeningConfig
from repro.core.pipeline import DegradedOutput
from repro.data import make_task
from repro.distributed import ShardedClassifier
from repro.utils.faults import FaultSpec

NUM_CATEGORIES = 100_000
HIDDEN_DIM = 64
PROJECTION_DIM = 16
CANDIDATES_PER_SHARD = 32
BATCH = 64
TOP_K = 16
SHARD_COUNTS = (2, 4)
REPEATS = 9
WARMUP = 2

#: The acceptance configuration from the issue: 4 workers at l≈100K.
HEADLINE_SHARDS = 4


def time_ms(fn: Callable[[], object]) -> float:
    """Best-of-``REPEATS`` wall time in milliseconds."""
    for _ in range(WARMUP):
        fn()
    samples: List[float] = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1e3)
    return min(samples)


def run() -> dict:
    task = make_task(
        num_categories=NUM_CATEGORIES, hidden_dim=HIDDEN_DIM, rng=7
    )
    features = task.sample_features(BATCH, rng=8)
    train_features = task.sample_features(512, rng=9)

    results = []
    for shards in SHARD_COUNTS:
        model = ShardedClassifier(
            task.classifier,
            num_shards=shards,
            config=ScreeningConfig(projection_dim=PROJECTION_DIM),
        )
        model.train(
            train_features,
            candidates_per_shard=CANDIDATES_PER_SHARD,
            rng=10,
        )

        sequential_forward = time_ms(lambda: model.forward(features))
        sequential_top_k = time_ms(lambda: model.top_k(features, k=TOP_K))

        start = time.perf_counter()
        engine = model.parallel(max_batch=BATCH)
        startup_ms = (time.perf_counter() - start) * 1e3

        start = time.perf_counter()
        first = engine.forward(features)
        first_request_ms = (time.perf_counter() - start) * 1e3
        # Sanity anchor: the two backends agree bit for bit (the full
        # differential harness lives in tests/test_distributed_parallel.py).
        assert np.array_equal(first.logits, model.forward(features).logits)

        try:
            parallel_forward = time_ms(lambda: engine.forward(features))
            parallel_top_k = time_ms(lambda: engine.top_k(features, k=TOP_K))
        finally:
            engine.close()

        entry = {
            "num_shards": shards,
            "timings_ms": {
                "sequential_forward": round(sequential_forward, 3),
                "parallel_forward": round(parallel_forward, 3),
                "sequential_top_k": round(sequential_top_k, 3),
                "parallel_top_k": round(parallel_top_k, 3),
                "engine_startup": round(startup_ms, 3),
                "first_request": round(first_request_ms, 3),
            },
            "speedup_forward": round(sequential_forward / parallel_forward, 2),
            "speedup_top_k": round(sequential_top_k / parallel_top_k, 2),
        }
        results.append(entry)
        print(
            f"shards={shards} "
            f"seq={sequential_forward:8.2f}ms "
            f"par={parallel_forward:8.2f}ms "
            f"({entry['speedup_forward']:5.2f}x fwd, "
            f"{entry['speedup_top_k']:5.2f}x top-k) "
            f"startup={startup_ms:7.1f}ms",
            flush=True,
        )

    cpus = os.cpu_count() or 1
    headline = next(r for r in results if r["num_shards"] == HEADLINE_SHARDS)
    return {
        "benchmark": "process-parallel sharded serving",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": cpus,
        },
        "config": {
            "num_categories": NUM_CATEGORIES,
            "hidden_dim": HIDDEN_DIM,
            "projection_dim": PROJECTION_DIM,
            "candidates_per_shard": CANDIDATES_PER_SHARD,
            "batch": BATCH,
            "top_k": TOP_K,
        },
        "repeats": REPEATS,
        "core_bound": cpus < HEADLINE_SHARDS,
        "note": (
            f"host has {cpus} cpu(s) for {HEADLINE_SHARDS} workers; "
            "speedups above 1x require one core per shard"
            if cpus < HEADLINE_SHARDS
            else f"host has {cpus} cpus; shards run on distinct cores"
        ),
        "headline": {
            "num_shards": HEADLINE_SHARDS,
            "speedup_forward": headline["speedup_forward"],
            "speedup_top_k": headline["speedup_top_k"],
        },
        "results": results,
    }


# --- availability / latency under faults ------------------------------

#: Per-request deadline for the fault scenario.  Generous relative to a
#: clean request so only injected faults trip it.
FAULT_DEADLINE_S = 1.0
FAULT_SHARDS = 2
FAULT_REQUESTS = 16

#: Deterministic schedule against shard 1 (request counts, not clocks):
#: a crash, a slow reply recovered by retry, a deterministic exception
#: (reported, never retried), and a wedge escalated to kill+respawn.
#: Request counts are per worker incarnation and only ``persistent``
#: specs survive a respawn, so the kill comes first (and is dropped
#: afterwards — no crash loop) while the later faults are persistent:
#: they fire at local requests 6/9/12 of the *post-kill* incarnation,
#: i.e. global requests 8/11/14 of the run.
FAULT_SCHEDULE = {
    1: (
        FaultSpec(kind="kill", at_request=3),
        FaultSpec(
            kind="delay",
            at_request=6,
            seconds=FAULT_DEADLINE_S * 1.5,
            persistent=True,
        ),
        FaultSpec(kind="raise", at_request=9, persistent=True),
        FaultSpec(kind="wedge", at_request=12, persistent=True),
    )
}


def run_faults(smoke: bool = False) -> dict:
    num_categories = 2_000 if smoke else 20_000
    task = make_task(num_categories=num_categories, hidden_dim=HIDDEN_DIM, rng=7)
    features = task.sample_features(BATCH, rng=8)
    train_features = task.sample_features(256 if smoke else 512, rng=9)

    model = ShardedClassifier(
        task.classifier,
        num_shards=FAULT_SHARDS,
        config=ScreeningConfig(projection_dim=PROJECTION_DIM),
    )
    model.train(
        train_features, candidates_per_shard=CANDIDATES_PER_SHARD, rng=10
    )
    expected = model.forward(features)

    # The delay fault must land inside the retry window, so the retried
    # request observes (and discards) the stale late reply.
    deadline = FAULT_DEADLINE_S
    engine = model.parallel(
        max_batch=BATCH,
        degraded=True,
        request_timeout=deadline,
        request_retries=1,
        max_restarts=4,
        restart_backoff=0.01,
        restart_backoff_cap=0.05,
        faults=FAULT_SCHEDULE,
    )

    latencies_ms: List[float] = []
    clean_ms: List[float] = []
    statuses: List[str] = []
    category_availability: List[float] = []
    mismatches = 0
    # `WorkerHandle.stale_replies` is per incarnation; accumulate across
    # respawns (a replacement handle restarts the counter at zero).
    stale_seen = [0] * FAULT_SHARDS
    stale = 0
    try:
        for _ in range(FAULT_REQUESTS):
            start = time.perf_counter()
            result = engine.forward(features)
            elapsed = (time.perf_counter() - start) * 1e3
            latencies_ms.append(elapsed)
            for shard, worker in enumerate(engine.workers):
                current = worker.stale_replies
                if current < stale_seen[shard]:
                    stale_seen[shard] = 0
                stale += current - stale_seen[shard]
                stale_seen[shard] = current
            if isinstance(result, DegradedOutput):
                statuses.append("degraded")
                category_availability.append(result.available_fraction)
            else:
                statuses.append("full")
                category_availability.append(1.0)
                clean_ms.append(elapsed)
                if not np.array_equal(result.logits, expected.logits):
                    mismatches += 1
        respawns = list(engine.restarts)
        dead = list(engine.dead_shards)
    finally:
        engine.close()

    full = statuses.count("full")
    degraded = statuses.count("degraded")
    report = {
        "config": {
            "num_categories": num_categories,
            "num_shards": FAULT_SHARDS,
            "batch": BATCH,
            "requests": FAULT_REQUESTS,
            "request_timeout_s": deadline,
            "request_retries": 1,
            "max_restarts": 4,
            "smoke": smoke,
            "schedule": [
                {"shard": shard, "kind": s.kind, "at_request": s.at_request}
                for shard, specs in sorted(FAULT_SCHEDULE.items())
                for s in specs
            ],
        },
        "availability": {
            "full_results": full,
            "degraded_results": degraded,
            "full_fraction": round(full / FAULT_REQUESTS, 4),
            "answered_fraction": round((full + degraded) / FAULT_REQUESTS, 4),
            "mean_category_availability": round(
                float(np.mean(category_availability)), 4
            ),
        },
        "latency_ms": {
            "clean_p50": round(float(np.median(clean_ms)), 3),
            "clean_max": round(max(clean_ms), 3),
            "overall_max": round(max(latencies_ms), 3),
            "per_request": [round(v, 3) for v in latencies_ms],
        },
        "recovery": {
            "respawns_per_shard": respawns,
            "stale_replies_discarded": stale,
            "dead_shards": dead,
            "full_result_mismatches": mismatches,
        },
        "statuses": statuses,
    }
    print(
        f"faults: {full}/{FAULT_REQUESTS} full, {degraded} degraded, "
        f"respawns={respawns} stale={stale} "
        f"clean p50={report['latency_ms']['clean_p50']}ms "
        f"worst={report['latency_ms']['overall_max']}ms",
        flush=True,
    )
    if mismatches:
        raise SystemExit(
            f"{mismatches} full results diverged from the sequential backend"
        )
    if full + degraded != FAULT_REQUESTS:
        raise SystemExit("degraded-mode engine failed to answer every request")
    return report


def main() -> int:
    argv = sys.argv[1:]
    faults = "--faults" in argv
    smoke = "--smoke" in argv
    positional = [a for a in argv if not a.startswith("--")]
    output_path = positional[0] if positional else "BENCH_parallel.json"

    if faults:
        # Read-modify-write: keep the throughput numbers if they exist.
        try:
            with open(output_path) as handle:
                report = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            report = {"benchmark": "process-parallel sharded serving"}
        report["faults"] = run_faults(smoke=smoke)
        with open(output_path, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"fault-tolerance report -> {output_path}")
        return 0

    report = run()
    report["faults"] = run_faults(smoke=smoke)
    with open(output_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    headline = report["headline"]
    print(
        f"\nheadline: l={NUM_CATEGORIES} batch={BATCH} "
        f"{headline['num_shards']} workers: parallel forward is "
        f"{headline['speedup_forward']}x sequential "
        f"({report['note']}) -> {output_path}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
