#!/usr/bin/env python
"""Benchmark: process-parallel sharded serving vs the sequential backend.

Times ``ShardedClassifier.forward`` / ``top_k`` against the same model
served through :class:`ParallelShardedEngine` (one worker process per
shard, parameters in shared memory), at extreme ``l`` and the serving
batch size.  Also times the engine's one-off costs (fleet startup,
first-request page-faulting) since a serving deployment pays them once.

Honesty note: process parallelism buys wall-clock only when shards run
on distinct cores.  The report records ``cpus`` (``os.cpu_count()``)
and, when the host has fewer cores than shards, the measured "speedup"
is really scatter/IPC overhead — the numbers are recorded as measured,
not as hoped.  On a multi-core host the expected headline at 4 workers
is the near-linear shard scaling the paper's Section 8 model predicts.

Run as a script (``make bench-parallel``); writes
``BENCH_parallel.json``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Callable, List

import numpy as np

from repro.core import ScreeningConfig
from repro.data import make_task
from repro.distributed import ShardedClassifier

NUM_CATEGORIES = 100_000
HIDDEN_DIM = 64
PROJECTION_DIM = 16
CANDIDATES_PER_SHARD = 32
BATCH = 64
TOP_K = 16
SHARD_COUNTS = (2, 4)
REPEATS = 9
WARMUP = 2

#: The acceptance configuration from the issue: 4 workers at l≈100K.
HEADLINE_SHARDS = 4


def time_ms(fn: Callable[[], object]) -> float:
    """Best-of-``REPEATS`` wall time in milliseconds."""
    for _ in range(WARMUP):
        fn()
    samples: List[float] = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1e3)
    return min(samples)


def run() -> dict:
    task = make_task(
        num_categories=NUM_CATEGORIES, hidden_dim=HIDDEN_DIM, rng=7
    )
    features = task.sample_features(BATCH, rng=8)
    train_features = task.sample_features(512, rng=9)

    results = []
    for shards in SHARD_COUNTS:
        model = ShardedClassifier(
            task.classifier,
            num_shards=shards,
            config=ScreeningConfig(projection_dim=PROJECTION_DIM),
        )
        model.train(
            train_features,
            candidates_per_shard=CANDIDATES_PER_SHARD,
            rng=10,
        )

        sequential_forward = time_ms(lambda: model.forward(features))
        sequential_top_k = time_ms(lambda: model.top_k(features, k=TOP_K))

        start = time.perf_counter()
        engine = model.parallel(max_batch=BATCH)
        startup_ms = (time.perf_counter() - start) * 1e3

        start = time.perf_counter()
        first = engine.forward(features)
        first_request_ms = (time.perf_counter() - start) * 1e3
        # Sanity anchor: the two backends agree bit for bit (the full
        # differential harness lives in tests/test_distributed_parallel.py).
        assert np.array_equal(first.logits, model.forward(features).logits)

        try:
            parallel_forward = time_ms(lambda: engine.forward(features))
            parallel_top_k = time_ms(lambda: engine.top_k(features, k=TOP_K))
        finally:
            engine.close()

        entry = {
            "num_shards": shards,
            "timings_ms": {
                "sequential_forward": round(sequential_forward, 3),
                "parallel_forward": round(parallel_forward, 3),
                "sequential_top_k": round(sequential_top_k, 3),
                "parallel_top_k": round(parallel_top_k, 3),
                "engine_startup": round(startup_ms, 3),
                "first_request": round(first_request_ms, 3),
            },
            "speedup_forward": round(sequential_forward / parallel_forward, 2),
            "speedup_top_k": round(sequential_top_k / parallel_top_k, 2),
        }
        results.append(entry)
        print(
            f"shards={shards} "
            f"seq={sequential_forward:8.2f}ms "
            f"par={parallel_forward:8.2f}ms "
            f"({entry['speedup_forward']:5.2f}x fwd, "
            f"{entry['speedup_top_k']:5.2f}x top-k) "
            f"startup={startup_ms:7.1f}ms",
            flush=True,
        )

    cpus = os.cpu_count() or 1
    headline = next(r for r in results if r["num_shards"] == HEADLINE_SHARDS)
    return {
        "benchmark": "process-parallel sharded serving",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": cpus,
        },
        "config": {
            "num_categories": NUM_CATEGORIES,
            "hidden_dim": HIDDEN_DIM,
            "projection_dim": PROJECTION_DIM,
            "candidates_per_shard": CANDIDATES_PER_SHARD,
            "batch": BATCH,
            "top_k": TOP_K,
        },
        "repeats": REPEATS,
        "core_bound": cpus < HEADLINE_SHARDS,
        "note": (
            f"host has {cpus} cpu(s) for {HEADLINE_SHARDS} workers; "
            "speedups above 1x require one core per shard"
            if cpus < HEADLINE_SHARDS
            else f"host has {cpus} cpus; shards run on distinct cores"
        ),
        "headline": {
            "num_shards": HEADLINE_SHARDS,
            "speedup_forward": headline["speedup_forward"],
            "speedup_top_k": headline["speedup_top_k"],
        },
        "results": results,
    }


def main() -> int:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_parallel.json"
    report = run()
    with open(output_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    headline = report["headline"]
    print(
        f"\nheadline: l={NUM_CATEGORIES} batch={BATCH} "
        f"{headline['num_shards']} workers: parallel forward is "
        f"{headline['speedup_forward']}x sequential "
        f"({report['note']}) -> {output_path}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
