"""Ablations on the screening algorithm's design choices (DESIGN.md §5).

* candidate selection: top-m vs tuned threshold;
* projection type: sparse ternary (Achlioptas) vs dense Gaussian;
* SFU Taylor order.
"""

import numpy as np

from repro.core import (
    ApproximateScreeningClassifier,
    CandidateSelector,
    ScreeningConfig,
    train_screener,
)
from repro.core.metrics import candidate_recall
from repro.core.screener import ScreeningModule
from repro.data import make_task
from repro.linalg.functional import softmax, taylor_softmax
from repro.linalg.projection import SparseRandomProjection, gaussian_projection
from repro.utils.tables import render_table


def _setup(rng_seed=1):
    task = make_task(num_categories=4000, hidden_dim=128, rng=rng_seed)
    screener = train_screener(
        task.classifier, task.sample_features(768),
        config=ScreeningConfig.from_scale(128, 0.25),
        solver="lstsq", rng=2,
    )
    return task, screener


def test_ablation_topm_vs_threshold(once):
    """Top-m gives a deterministic budget; threshold adapts per input.
    At matched *average* budgets both should reach similar recall."""
    task, screener = _setup()

    def compare():
        features = task.sample_features(96, rng=5)
        exact = task.classifier.logits(features)
        budget = 80

        topm = ApproximateScreeningClassifier(
            task.classifier, screener,
            selector=CandidateSelector(mode="top_m", num_candidates=budget),
        )
        out_topm = topm(features)

        thr_selector = CandidateSelector(mode="threshold", num_candidates=budget)
        thr_selector.calibrate(
            screener.approximate_logits(task.sample_features(256, rng=6))
        )
        thresh = ApproximateScreeningClassifier(
            task.classifier, screener, selector=thr_selector
        )
        out_thresh = thresh(features)
        return {
            "topm_recall": candidate_recall(exact, out_topm, 1),
            "thresh_recall": candidate_recall(exact, out_thresh, 1),
            "topm_budget": out_topm.exact_count / 96,
            "thresh_budget": out_thresh.exact_count / 96,
        }

    result = once(compare)
    print()
    print(render_table(
        ["Selector", "Recall@1", "Avg candidates"],
        [("top-m", round(result["topm_recall"], 4), round(result["topm_budget"], 1)),
         ("threshold", round(result["thresh_recall"], 4),
          round(result["thresh_budget"], 1))],
        title="Ablation: top-m vs threshold candidate selection",
    ))
    assert result["topm_recall"] > 0.95
    assert result["thresh_recall"] > 0.90
    # The threshold's average budget lands near the calibration target.
    assert 0.3 * 80 < result["thresh_budget"] < 3.0 * 80


def test_ablation_projection_type(once):
    """Sparse ternary vs dense Gaussian projection: comparable recall,
    but the ternary projection stores at 2 bits/entry (16× smaller)."""
    task, _ = _setup()

    def compare():
        features = task.sample_features(768, rng=7)
        rows = []
        for name in ("sparse-ternary", "dense-gaussian"):
            if name == "sparse-ternary":
                projection = SparseRandomProjection(128, 32, rng=3)
                proj_bytes = projection.nbytes
            else:
                matrix = gaussian_projection(128, 32, rng=3)
                projection = SparseRandomProjection(128, 32, rng=3)
                projection._ternary = None  # replaced below
                proj_bytes = matrix.size * 4

            screener = train_screener(
                task.classifier, features,
                config=ScreeningConfig(projection_dim=32), solver="lstsq", rng=4,
            )
            if name == "dense-gaussian":
                # Rebuild the screener on the dense projection by
                # re-solving against the same targets.
                projected = features @ matrix.T
                targets = task.classifier.logits(features)
                design = np.hstack([projected, np.ones((len(features), 1))])
                solution, *_ = np.linalg.lstsq(design, targets, rcond=None)

                class _DenseScreener:
                    quantization_bits = 4

                    def approximate_logits(self, feats):
                        from repro.linalg.quantize import Quantizer

                        proj = np.asarray(feats) @ matrix.T
                        proj = Quantizer(bits=4, axis=0).fake_quantize(proj)
                        return proj @ solution[:-1] + solution[-1]

                screener = _DenseScreener()

            test = task.sample_features(96, rng=8)
            exact = task.classifier.logits(test)
            approx = screener.approximate_logits(test)
            from repro.linalg.topk import top_k_indices

            picked = top_k_indices(approx, 80, sort=False)
            hits = sum(
                int(np.argmax(exact[i]) in picked[i]) for i in range(96)
            )
            rows.append((name, hits / 96, proj_bytes))
        return rows

    rows = once(compare)
    print()
    print(render_table(
        ["Projection", "Recall@1", "P bytes"], rows,
        title="Ablation: sparse ternary vs dense Gaussian projection",
    ))
    sparse, dense = rows
    assert sparse[1] > dense[1] - 0.1  # comparable recall
    assert sparse[2] < dense[2] / 10  # far smaller storage


def test_ablation_taylor_order(once):
    """SFU accuracy vs polynomial order (paper uses order 4)."""

    def sweep():
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((64, 256)) * 4
        exact = softmax(logits)
        rows = []
        for order in (1, 2, 4, 6, 8):
            approx = taylor_softmax(logits, order=order)
            err = float(np.abs(approx - exact).max())
            flips = float(np.mean(
                np.argmax(approx, axis=1) != np.argmax(exact, axis=1)
            ))
            rows.append((order, err, flips))
        return rows

    rows = once(sweep)
    print()
    print(render_table(
        ["Taylor order", "Max |Δp|", "Top-1 flips"], rows,
        title="Ablation: SFU exponential polynomial order",
    ))
    errors = [r[1] for r in rows]
    assert errors == sorted(errors, reverse=True)
    order4 = next(r for r in rows if r[0] == 4)
    assert order4[1] < 1e-3  # paper's choice is effectively exact
    assert order4[2] == 0.0
