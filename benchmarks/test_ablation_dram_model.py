"""Ablation: analytic vs cycle-accurate DRAM model (DESIGN.md §5).

Paper-scale experiments run on the analytic model; this benchmark
cross-validates it against the cycle model on workloads representative
of both ENMC access patterns (screening stream, candidate gather).
"""

import numpy as np

from repro.dram import AnalyticDRAMModel, DDR4_2400, DRAMSystem
from repro.utils.tables import render_table


def _cycle_stream(num_bytes):
    system = DRAMSystem(DDR4_2400, channels=1, ranks_per_channel=8)
    system.stream_read(0, num_bytes)
    return system.drain()


def _cycle_gather(accesses, seed=0):
    system = DRAMSystem(DDR4_2400, channels=1, ranks_per_channel=8)
    rng = np.random.default_rng(seed)
    system.gather_read((rng.integers(0, 1 << 28, accesses) // 64 * 64).tolist())
    return system.drain()


def test_ablation_stream_accuracy(once):
    analytic = AnalyticDRAMModel(DDR4_2400, channels=1, ranks_per_channel=8)

    def sweep():
        rows = []
        for kib in (64, 256, 512):
            measured = _cycle_stream(kib * 1024)
            estimate = analytic.stream(kib * 1024)
            rows.append(
                (kib, measured.cycles, round(estimate.cycles),
                 round(100 * (estimate.cycles / measured.cycles - 1), 2))
            )
        return rows

    rows = once(sweep)
    print()
    print(render_table(
        ["Stream KiB", "Cycle model", "Analytic", "Error %"], rows,
        title="Ablation: analytic vs cycle DRAM model (stream)",
    ))
    assert all(abs(row[3]) < 10 for row in rows)


def test_ablation_gather_accuracy(once):
    analytic = AnalyticDRAMModel(DDR4_2400, channels=1, ranks_per_channel=8)

    def sweep():
        rows = []
        for accesses in (100, 400):
            measured = _cycle_gather(accesses)
            estimate = analytic.gather(accesses, 64)
            rows.append(
                (accesses, measured.cycles, round(estimate.cycles),
                 round(100 * (estimate.cycles / measured.cycles - 1), 2))
            )
        return rows

    rows = once(sweep)
    print()
    print(render_table(
        ["Gathers", "Cycle model", "Analytic", "Error %"], rows,
        title="Ablation: analytic vs cycle DRAM model (gather)",
    ))
    # Gather is harder to capture in closed form; 35% band.
    assert all(abs(row[3]) < 35 for row in rows)
