"""Fig. 5 — footprint/latency scaling and roofline benchmark."""

from repro.experiments import fig05_motivation


def test_fig05_scaling(once):
    rows = once(fig05_motivation.run_scaling)
    print()
    print(fig05_motivation.report())
    # Linear scaling: time ratio tracks the category ratio.
    t_small = next(r for r in rows if r.num_categories == 100_000)
    t_large = next(r for r in rows if r.num_categories == 10_000_000)
    assert 50 < t_large.cpu_seconds / t_small.cpu_seconds < 150


def test_fig05_roofline(once):
    points = once(fig05_motivation.run_roofline)
    classification = [p for p in points if p.kernel != "front-end-dnn"]
    assert all(p.bound == "memory" for p in classification)
    front_end = [p for p in points if p.kernel == "front-end-dnn"]
    assert all(p.bound == "compute" for p in front_end)
