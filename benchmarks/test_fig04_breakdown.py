"""Fig. 4 — parameter/operation breakdown benchmark."""

from repro.experiments import fig04_breakdown


def test_fig04_breakdown(once):
    rows = once(fig04_breakdown.run, True)
    print()
    print(fig04_breakdown.report())
    # Paper claim: classification becomes the majority at large scale.
    by_workload = {r.workload: r for r in rows}
    assert by_workload["XMLCNN-670K"].param_fraction > 0.5
    assert by_workload["S100M"].param_fraction > 0.95
