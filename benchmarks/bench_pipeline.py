#!/usr/bin/env python
"""Microbenchmark: vectorized screening engine vs the original pipeline.

Times the screening hot path end to end — screener-only, the default
vectorized ``forward``, the ``faithful=True`` reference mode, and
``forward_gathered`` — against a pinned reimplementation of the
original (pre-vectorization) dataflow: dense ``P`` rebuilt on every
call, a fresh ``Quantizer`` per call, a two-op matmul + bias add, a
full copy of the score plane, per-row candidate selection and a
per-row exact loop.

The seed stack is measured as it shipped, under glibc's default
allocator; the engine paths are measured under the serving
configuration (:func:`repro.utils.memory.configure_serving_allocator`),
which this change introduces — at extreme ``l`` the default allocator
re-faults the whole score plane on every batch, and removing that
churn is part of the hot-path work being benchmarked.

Run as a script (``make bench``); writes ``BENCH_pipeline.json`` with
per-config timings and the headline ``speedup_default_vs_seed``.

This is not a pytest-benchmark module — the paper-figure benchmarks in
``benchmarks/test_*.py`` measure experiment outputs; this file measures
the serving hot path in wall-clock terms.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Callable, List

import numpy as np

from repro.core.candidates import CandidateSelector, CandidateSet
from repro.core.classifier import FullClassifier
from repro.core.pipeline import ApproximateScreeningClassifier
from repro.core.screener import ScreeningModule
from repro.linalg.projection import SparseRandomProjection
from repro.linalg.quantize import Quantizer
from repro.linalg.topk import top_k_indices
from repro.utils.memory import configure_serving_allocator, reset_default_allocator

HIDDEN_DIM = 64
PROJECTION_DIM = 16
NUM_CANDIDATES = 32
CATEGORY_COUNTS = (33_000, 100_000)
BATCH_SIZES = (64, 256)
SELECTORS = ("top_m", "threshold")
REPEATS = 9
WARMUP = 2

#: The acceptance configuration: extreme-l, serving batch, the
#: comparator's native selection mode.
HEADLINE = {"num_categories": 100_000, "batch": 64, "selector": "threshold"}


class SeedPipeline:
    """Pinned reconstruction of the pre-vectorization forward pass.

    Mirrors the original implementation operation for operation so the
    speedup baseline stays stable even as the library evolves:

    * ``SparseRandomProjection.matrix`` was a property that rebuilt the
      dense float64 matrix from the ternary codes on every projection;
    * ``approximate_logits`` constructed a fresh :class:`Quantizer` per
      call and computed ``projected @ W.T + bias`` as two passes over
      the (batch, l) plane;
    * selection cast scores to float64 and, in top-m mode, sorted each
      row in a Python list comprehension; threshold mode scanned row by
      row;
    * ``forward`` copied the full score plane, then looped over batch
      rows gathering and mixing one row's candidates at a time.
    """

    def __init__(
        self,
        classifier: FullClassifier,
        screener: ScreeningModule,
        selector: CandidateSelector,
    ):
        self.classifier = classifier
        self.screener = screener
        self.selector = selector

    def approximate_logits(self, batch: np.ndarray) -> np.ndarray:
        projection = self.screener.projection
        matrix = projection.ternary.astype(np.float64) * projection.scale
        projected = np.asarray(batch, dtype=np.float64) @ matrix.T
        if self.screener.quantization_bits is not None:
            quantizer = Quantizer(bits=self.screener.quantization_bits, axis=0)
            projected = quantizer.fake_quantize(projected)
        return projected @ self.screener._weight_deq.T + self.screener.bias

    def select(self, scores: np.ndarray) -> CandidateSet:
        array = np.asarray(scores, dtype=np.float64)
        if self.selector.mode == "top_m":
            m = min(self.selector.num_candidates, array.shape[1])
            picked = top_k_indices(array, m, sort=False)
            return CandidateSet(indices=[np.sort(row) for row in picked])
        threshold = self.selector.threshold
        return CandidateSet(
            indices=[np.flatnonzero(row > threshold) for row in array]
        )

    def forward(self, batch: np.ndarray) -> np.ndarray:
        approx = self.approximate_logits(batch)
        candidates = self.select(approx)
        mixed = approx.copy()
        for row, indices in enumerate(candidates):
            if indices.size == 0:
                continue
            exact = self.classifier.logits_for(indices, batch[row])
            mixed[row, indices] = exact[0]
        return mixed


def build_models(num_categories: int, rng: np.random.Generator):
    weight = rng.standard_normal((num_categories, HIDDEN_DIM)) / np.sqrt(HIDDEN_DIM)
    bias = rng.standard_normal(num_categories) * 0.01
    classifier = FullClassifier(weight, bias)
    projection = SparseRandomProjection(HIDDEN_DIM, PROJECTION_DIM, rng=rng)
    screener_weight = rng.standard_normal(
        (num_categories, PROJECTION_DIM)
    ) / np.sqrt(PROJECTION_DIM)
    screener = ScreeningModule(
        projection, screener_weight, np.zeros(num_categories), quantization_bits=4
    )
    return classifier, screener


def build_cases() -> List[dict]:
    cases = []
    for num_categories in CATEGORY_COUNTS:
        rng = np.random.default_rng(7)
        classifier, screener = build_models(num_categories, rng)
        screener_f32 = ScreeningModule(
            screener.projection,
            screener.weight,
            screener.bias,
            quantization_bits=4,
            compute_dtype=np.float32,
        )
        calibration = rng.standard_normal((64, HIDDEN_DIM))
        for selector_mode in SELECTORS:
            selector = CandidateSelector(
                mode=selector_mode, num_candidates=NUM_CANDIDATES
            )
            if selector_mode == "threshold":
                selector.calibrate(screener.approximate_logits(calibration))
            engine = ApproximateScreeningClassifier(classifier, screener, selector)
            engine_f32 = ApproximateScreeningClassifier(
                classifier, screener_f32, selector
            )
            seed = SeedPipeline(classifier, screener, selector)
            for batch_size in BATCH_SIZES:
                cases.append(
                    {
                        "num_categories": num_categories,
                        "selector": selector_mode,
                        "batch": batch_size,
                        "features": rng.standard_normal((batch_size, HIDDEN_DIM)),
                        "screener": screener,
                        "engine": engine,
                        "engine_f32": engine_f32,
                        "seed": seed,
                    }
                )
    return cases


def time_ms(fn: Callable[[], object]) -> float:
    """Best-of-``REPEATS`` wall time in milliseconds."""
    for _ in range(WARMUP):
        fn()
    samples: List[float] = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1e3)
    return min(samples)


def run() -> dict:
    cases = build_cases()

    # The seed stack never tuned the allocator; time it as shipped.
    reset_default_allocator()
    for case in cases:
        seed, batch = case["seed"], case["features"]
        case["seed_ms"] = time_ms(lambda: seed.forward(batch))

    serving_allocator = configure_serving_allocator()
    results = []
    for case in cases:
        screener = case["screener"]
        engine = case["engine"]
        engine_f32 = case["engine_f32"]
        batch = case["features"]
        timings = {
            "seed_forward": case["seed_ms"],
            "screener_only": time_ms(lambda: screener.approximate_logits(batch)),
            "forward_default": time_ms(lambda: engine.forward(batch)),
            "forward_default_f32": time_ms(lambda: engine_f32.forward(batch)),
            "forward_faithful": time_ms(
                lambda: engine.forward(batch, faithful=True)
            ),
            "forward_gathered": time_ms(lambda: engine.forward_gathered(batch)),
        }
        entry = {
            "num_categories": case["num_categories"],
            "hidden_dim": HIDDEN_DIM,
            "projection_dim": PROJECTION_DIM,
            "num_candidates": NUM_CANDIDATES,
            "selector": case["selector"],
            "batch": case["batch"],
            "timings_ms": {k: round(v, 3) for k, v in timings.items()},
            "speedup_default_vs_seed": round(
                timings["seed_forward"] / timings["forward_default"], 2
            ),
            "speedup_f32_vs_seed": round(
                timings["seed_forward"] / timings["forward_default_f32"], 2
            ),
        }
        results.append(entry)
        print(
            f"l={case['num_categories']} {case['selector']:>9} "
            f"b={case['batch']:<3} "
            f"seed={timings['seed_forward']:8.2f}ms "
            f"default={timings['forward_default']:8.2f}ms "
            f"({entry['speedup_default_vs_seed']:5.2f}x) "
            f"f32={timings['forward_default_f32']:8.2f}ms "
            f"({entry['speedup_f32_vs_seed']:5.2f}x)",
            flush=True,
        )

    headline_entry = next(
        r
        for r in results
        if all(r[key] == value for key, value in HEADLINE.items())
    )
    return {
        "benchmark": "screening pipeline hot path",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "repeats": REPEATS,
        "allocator": {
            "seed_forward": "glibc default (pre-change stack, as shipped)",
            "engine_paths": "configure_serving_allocator"
            if serving_allocator
            else "glibc default (tuning unavailable on this platform)",
        },
        "headline": {
            **HEADLINE,
            "speedup_default_vs_seed": headline_entry["speedup_default_vs_seed"],
        },
        "results": results,
    }


def main() -> int:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pipeline.json"
    report = run()
    with open(output_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    headline = report["headline"]
    print(
        f"\nheadline: l={headline['num_categories']} batch={headline['batch']} "
        f"{headline['selector']}: default forward is "
        f"{headline['speedup_default_vs_seed']}x the seed loop "
        f"-> {output_path}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
