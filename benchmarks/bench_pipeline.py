#!/usr/bin/env python
"""Microbenchmark: vectorized screening engine vs the original pipeline.

Times the screening hot path end to end — screener-only, the default
vectorized ``forward``, the ``faithful=True`` reference mode, and
``forward_gathered`` — against a pinned reimplementation of the
original (pre-vectorization) dataflow: dense ``P`` rebuilt on every
call, a fresh ``Quantizer`` per call, a two-op matmul + bias add, a
full copy of the score plane, per-row candidate selection and a
per-row exact loop.

The seed stack is measured as it shipped, under glibc's default
allocator; the engine paths are measured under the serving
configuration (:func:`repro.utils.memory.configure_serving_allocator`),
which this change introduces — at extreme ``l`` the default allocator
re-faults the whole score plane on every batch, and removing that
churn is part of the hot-path work being benchmarked.

Run as a script (``make bench``); writes ``BENCH_pipeline.json`` with
per-config timings and the headline ``speedup_default_vs_seed``.

``--streaming`` (``make bench-streaming``) instead measures the blocked
streaming forward against the dense vectorized engine at extreme
``l`` — wall-clock untraced, then peak *incremental* memory twice over:
tracemalloc traced-allocation peaks (the primary metric; numpy routes
data allocations through the tracked domain) and ``ru_maxrss``
high-water deltas as corroborating context (streaming runs first, since
the process high-water mark never decreases).  Writes
``BENCH_streaming.json``.

``--trace`` (``make bench-trace``) measures the observability layer
itself: the blocked streaming forward timed with the default no-op
recorder, with metrics recording on, and with metrics + span tracing
on.  It merges a ``"telemetry"`` block (overhead percentages, the
metrics snapshot) into the existing ``BENCH_pipeline.json`` —
read-modify-write, like ``bench_parallel.py --faults`` — and writes one
clean single-request Chrome trace to ``BENCH_trace.json``, validated
against the minimal trace-event schema before it lands.

``--quantized-exact`` (``make bench-streaming-quant``) measures the
block-quantized exact-weight store: FP64 vs INT8/FP16 resident bytes,
``ru_maxrss`` increments from materializing each parameter set,
per-call streaming wall-clock + tracemalloc peaks for both engines, and
streamed ``predict()`` agreement.  Merges a ``"quantized_exact"`` block
into ``BENCH_streaming.json`` (read-modify-write, keeping the existing
streaming-vs-dense numbers).

``--smoke`` shrinks any mode to seconds for CI.

This is not a pytest-benchmark module — the paper-figure benchmarks in
``benchmarks/test_*.py`` measure experiment outputs; this file measures
the serving hot path in wall-clock terms.
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
import tracemalloc
from typing import Callable, List

import numpy as np

from repro.core.candidates import CandidateSelector, CandidateSet
from repro.core.classifier import FullClassifier
from repro.core.pipeline import ApproximateScreeningClassifier
from repro.core.screener import ScreeningModule
from repro.linalg.projection import SparseRandomProjection
from repro.linalg.quantize import Quantizer
from repro.linalg.topk import top_k_indices
from repro.obs import NULL_RECORDER, Recorder, validate_chrome_events
from repro.utils.memory import configure_serving_allocator, reset_default_allocator

HIDDEN_DIM = 64
PROJECTION_DIM = 16
NUM_CANDIDATES = 32
CATEGORY_COUNTS = (33_000, 100_000)
BATCH_SIZES = (64, 256)
SELECTORS = ("top_m", "threshold")
REPEATS = 9
WARMUP = 2

#: The acceptance configuration: extreme-l, serving batch, the
#: comparator's native selection mode.
HEADLINE = {"num_categories": 100_000, "batch": 64, "selector": "threshold"}

#: Streaming-mode acceptance configuration (the paper's Wikipedia-670K
#: scale): the dense engine must materialize a batch × l float64 plane
#: (~1.4 GB), the streaming engine must not.
STREAM_CATEGORIES = 670_000
STREAM_BATCH = 256
STREAM_HEADLINE_SELECTOR = "top_m"
STREAM_REPEATS = 3
SMOKE_STREAM_CATEGORIES = 20_000
SMOKE_STREAM_BATCH = 16


class SeedPipeline:
    """Pinned reconstruction of the pre-vectorization forward pass.

    Mirrors the original implementation operation for operation so the
    speedup baseline stays stable even as the library evolves:

    * ``SparseRandomProjection.matrix`` was a property that rebuilt the
      dense float64 matrix from the ternary codes on every projection;
    * ``approximate_logits`` constructed a fresh :class:`Quantizer` per
      call and computed ``projected @ W.T + bias`` as two passes over
      the (batch, l) plane;
    * selection cast scores to float64 and, in top-m mode, sorted each
      row in a Python list comprehension; threshold mode scanned row by
      row;
    * ``forward`` copied the full score plane, then looped over batch
      rows gathering and mixing one row's candidates at a time.
    """

    def __init__(
        self,
        classifier: FullClassifier,
        screener: ScreeningModule,
        selector: CandidateSelector,
    ):
        self.classifier = classifier
        self.screener = screener
        self.selector = selector

    def approximate_logits(self, batch: np.ndarray) -> np.ndarray:
        projection = self.screener.projection
        matrix = projection.ternary.astype(np.float64) * projection.scale
        projected = np.asarray(batch, dtype=np.float64) @ matrix.T
        if self.screener.quantization_bits is not None:
            quantizer = Quantizer(bits=self.screener.quantization_bits, axis=0)
            projected = quantizer.fake_quantize(projected)
        return projected @ self.screener._weight_deq.T + self.screener.bias

    def select(self, scores: np.ndarray) -> CandidateSet:
        array = np.asarray(scores, dtype=np.float64)
        if self.selector.mode == "top_m":
            m = min(self.selector.num_candidates, array.shape[1])
            picked = top_k_indices(array, m, sort=False)
            return CandidateSet(indices=[np.sort(row) for row in picked])
        threshold = self.selector.threshold
        return CandidateSet(
            indices=[np.flatnonzero(row > threshold) for row in array]
        )

    def forward(self, batch: np.ndarray) -> np.ndarray:
        approx = self.approximate_logits(batch)
        candidates = self.select(approx)
        mixed = approx.copy()
        for row, indices in enumerate(candidates):
            if indices.size == 0:
                continue
            exact = self.classifier.logits_for(indices, batch[row])
            mixed[row, indices] = exact[0]
        return mixed


def build_models(num_categories: int, rng: np.random.Generator):
    weight = rng.standard_normal((num_categories, HIDDEN_DIM)) / np.sqrt(HIDDEN_DIM)
    bias = rng.standard_normal(num_categories) * 0.01
    classifier = FullClassifier(weight, bias)
    projection = SparseRandomProjection(HIDDEN_DIM, PROJECTION_DIM, rng=rng)
    screener_weight = rng.standard_normal(
        (num_categories, PROJECTION_DIM)
    ) / np.sqrt(PROJECTION_DIM)
    screener = ScreeningModule(
        projection, screener_weight, np.zeros(num_categories), quantization_bits=4
    )
    return classifier, screener


def build_cases(category_counts=CATEGORY_COUNTS, batch_sizes=BATCH_SIZES) -> List[dict]:
    cases = []
    for num_categories in category_counts:
        rng = np.random.default_rng(7)
        classifier, screener = build_models(num_categories, rng)
        screener_f32 = ScreeningModule(
            screener.projection,
            screener.weight,
            screener.bias,
            quantization_bits=4,
            compute_dtype=np.float32,
        )
        calibration = rng.standard_normal((64, HIDDEN_DIM))
        for selector_mode in SELECTORS:
            selector = CandidateSelector(
                mode=selector_mode, num_candidates=NUM_CANDIDATES
            )
            if selector_mode == "threshold":
                selector.calibrate(screener.approximate_logits(calibration))
            engine = ApproximateScreeningClassifier(classifier, screener, selector)
            engine_f32 = ApproximateScreeningClassifier(
                classifier, screener_f32, selector
            )
            seed = SeedPipeline(classifier, screener, selector)
            for batch_size in batch_sizes:
                cases.append(
                    {
                        "num_categories": num_categories,
                        "selector": selector_mode,
                        "batch": batch_size,
                        "features": rng.standard_normal((batch_size, HIDDEN_DIM)),
                        "screener": screener,
                        "engine": engine,
                        "engine_f32": engine_f32,
                        "seed": seed,
                    }
                )
    return cases


def time_ms(
    fn: Callable[[], object], repeats: int = REPEATS, warmup: int = WARMUP
) -> float:
    """Best-of-``repeats`` wall time in milliseconds."""
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1e3)
    return min(samples)


def run(smoke: bool = False) -> dict:
    if smoke:
        cases = build_cases(category_counts=(5_000,), batch_sizes=(16,))
        repeats, warmup = 2, 1
        headline_config = {"num_categories": 5_000, "batch": 16,
                           "selector": "threshold"}
    else:
        cases = build_cases()
        repeats, warmup = REPEATS, WARMUP
        headline_config = HEADLINE

    # The seed stack never tuned the allocator; time it as shipped.
    reset_default_allocator()
    for case in cases:
        seed, batch = case["seed"], case["features"]
        case["seed_ms"] = time_ms(lambda: seed.forward(batch), repeats, warmup)

    serving_allocator = configure_serving_allocator()
    results = []
    for case in cases:
        screener = case["screener"]
        engine = case["engine"]
        engine_f32 = case["engine_f32"]
        batch = case["features"]
        timings = {
            "seed_forward": case["seed_ms"],
            "screener_only": time_ms(
                lambda: screener.approximate_logits(batch), repeats, warmup
            ),
            "forward_default": time_ms(
                lambda: engine.forward(batch), repeats, warmup
            ),
            "forward_default_f32": time_ms(
                lambda: engine_f32.forward(batch), repeats, warmup
            ),
            "forward_faithful": time_ms(
                lambda: engine.forward(batch, faithful=True), repeats, warmup
            ),
            "forward_gathered": time_ms(
                lambda: engine.forward_gathered(batch), repeats, warmup
            ),
        }
        entry = {
            "num_categories": case["num_categories"],
            "hidden_dim": HIDDEN_DIM,
            "projection_dim": PROJECTION_DIM,
            "num_candidates": NUM_CANDIDATES,
            "selector": case["selector"],
            "batch": case["batch"],
            "timings_ms": {k: round(v, 3) for k, v in timings.items()},
            "speedup_default_vs_seed": round(
                timings["seed_forward"] / timings["forward_default"], 2
            ),
            "speedup_f32_vs_seed": round(
                timings["seed_forward"] / timings["forward_default_f32"], 2
            ),
        }
        results.append(entry)
        print(
            f"l={case['num_categories']} {case['selector']:>9} "
            f"b={case['batch']:<3} "
            f"seed={timings['seed_forward']:8.2f}ms "
            f"default={timings['forward_default']:8.2f}ms "
            f"({entry['speedup_default_vs_seed']:5.2f}x) "
            f"f32={timings['forward_default_f32']:8.2f}ms "
            f"({entry['speedup_f32_vs_seed']:5.2f}x)",
            flush=True,
        )

    headline_entry = next(
        r
        for r in results
        if all(r[key] == value for key, value in headline_config.items())
    )
    return {
        "benchmark": "screening pipeline hot path",
        "machine": machine_metadata(),
        "repeats": repeats,
        "allocator": {
            "seed_forward": "glibc default (pre-change stack, as shipped)",
            "engine_paths": "configure_serving_allocator"
            if serving_allocator
            else "glibc default (tuning unavailable on this platform)",
        },
        "headline": {
            **headline_config,
            "speedup_default_vs_seed": headline_entry["speedup_default_vs_seed"],
        },
        "results": results,
    }


# ----------------------------------------------------------------------
# streaming mode: blocked forward vs the dense engine at extreme l
# ----------------------------------------------------------------------
def machine_metadata() -> dict:
    import os

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def rss_kb() -> int:
    """Process high-water RSS in kB (Linux ``ru_maxrss`` units)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def traced_peak_bytes(fn: Callable[[], object]) -> int:
    """Peak incremental traced allocation of one warm call.

    One untraced warm call first (so workspaces and caches are settled),
    then the peak is measured relative to the live footprint at the
    start of the traced call — exactly the transient memory the call
    itself adds.
    """
    fn()
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        baseline = tracemalloc.get_traced_memory()[0]
        fn()
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    return max(0, peak - baseline)


def build_streaming_cases(num_categories: int, batch_size: int) -> List[dict]:
    rng = np.random.default_rng(7)
    classifier, screener = build_models(num_categories, rng)
    calibration = rng.standard_normal((64, HIDDEN_DIM))
    features = rng.standard_normal((batch_size, HIDDEN_DIM))
    cases = []
    for selector_mode in SELECTORS:
        selector = CandidateSelector(
            mode=selector_mode, num_candidates=NUM_CANDIDATES
        )
        if selector_mode == "threshold":
            selector.calibrate(screener.approximate_logits(calibration))
        cases.append(
            {
                "selector": selector_mode,
                "engine": ApproximateScreeningClassifier(
                    classifier, screener, selector
                ),
                "features": features,
            }
        )
    return cases


def run_streaming(smoke: bool = False) -> dict:
    num_categories = SMOKE_STREAM_CATEGORIES if smoke else STREAM_CATEGORIES
    batch_size = SMOKE_STREAM_BATCH if smoke else STREAM_BATCH
    repeats = 2 if smoke else STREAM_REPEATS
    cases = build_streaming_cases(num_categories, batch_size)
    serving_allocator = configure_serving_allocator()

    results = []
    rss_start = rss_kb()
    # Streaming is measured before ANY dense call: ru_maxrss is a
    # process-lifetime high-water mark, so once the dense plane exists
    # the streaming delta would read as zero regardless of its true
    # footprint.
    for case in cases:
        engine, batch = case["engine"], case["features"]
        case["streaming_ms"] = time_ms(
            lambda: engine.forward_streaming(batch), repeats, warmup=1
        )
        case["streaming_peak"] = traced_peak_bytes(
            lambda: engine.forward_streaming(batch)
        )
    rss_after_streaming = rss_kb()
    for case in cases:
        engine, batch = case["engine"], case["features"]
        case["dense_ms"] = time_ms(
            lambda: engine.forward(batch), repeats, warmup=1
        )
        case["dense_peak"] = traced_peak_bytes(lambda: engine.forward(batch))
    rss_after_dense = rss_kb()

    rss_record = {
        "streaming_increment_kb": rss_after_streaming - rss_start,
        "dense_additional_increment_kb": rss_after_dense - rss_after_streaming,
        "note": "high-water deltas; streaming measured first (context "
        "metric — tracemalloc peaks are the primary comparison)",
    }
    for case in cases:
        entry = {
            "num_categories": num_categories,
            "hidden_dim": HIDDEN_DIM,
            "projection_dim": PROJECTION_DIM,
            "num_candidates": NUM_CANDIDATES,
            "selector": case["selector"],
            "batch": batch_size,
            "timings_ms": {
                "forward_default": round(case["dense_ms"], 3),
                "forward_streaming": round(case["streaming_ms"], 3),
            },
            "peak_incremental_bytes": {
                "forward_default": case["dense_peak"],
                "forward_streaming": case["streaming_peak"],
            },
            "speedup_streaming_vs_default": round(
                case["dense_ms"] / case["streaming_ms"], 2
            ),
            "peak_memory_reduction": round(
                case["dense_peak"] / max(case["streaming_peak"], 1), 1
            ),
        }
        results.append(entry)
        print(
            f"l={num_categories} {case['selector']:>9} b={batch_size:<3} "
            f"dense={case['dense_ms']:9.2f}ms "
            f"streaming={case['streaming_ms']:9.2f}ms "
            f"({entry['speedup_streaming_vs_default']:5.2f}x)  "
            f"peak {case['dense_peak'] / 1e6:9.1f}MB -> "
            f"{case['streaming_peak'] / 1e6:7.1f}MB "
            f"({entry['peak_memory_reduction']:6.1f}x less)",
            flush=True,
        )

    headline_entry = next(
        r for r in results if r["selector"] == STREAM_HEADLINE_SELECTOR
    )
    return {
        "benchmark": "blocked streaming forward vs dense engine",
        "machine": machine_metadata(),
        "repeats": repeats,
        "allocator": (
            "configure_serving_allocator"
            if serving_allocator
            else "glibc default (tuning unavailable on this platform)"
        ),
        "ru_maxrss": rss_record,
        "headline": {
            "num_categories": num_categories,
            "batch": batch_size,
            "selector": STREAM_HEADLINE_SELECTOR,
            "speedup_streaming_vs_default": headline_entry[
                "speedup_streaming_vs_default"
            ],
            "peak_memory_reduction": headline_entry["peak_memory_reduction"],
        },
        "results": results,
    }


# ----------------------------------------------------------------------
# quantized-exact mode: block-quantized weight store vs FP64 residency
# ----------------------------------------------------------------------
def run_quantized(smoke: bool = False) -> dict:
    """Resident-set and serving cost of the block-quantized exact store.

    Measures, at the streaming scale (l=670K full, smoke-shrunk in CI):

    * exact-weight resident bytes — the FP64 plane vs the INT8 codes
      (+ per-tile scales + FP64 bias) vs raw float16, from the arrays
      that must stay resident to serve;
    * ``ru_maxrss`` increments — the process high-water delta from
      materializing the FP64 model, then the (much smaller) delta from
      building the quantized store on top of it;
    * per-call serving cost — streaming wall-clock and tracemalloc
      traced-allocation peak for the FP64 and the quantized engine
      (both stream tiles; the quantized path dequantizes into workspace
      scratch, so its per-call peak must stay in the same regime);
    * streamed ``predict()`` agreement between the two engines, per
      selector (the bounded-delta quality gate proper lives in
      ``tests/test_quantized_store.py``).
    """
    from repro.core.weightstore import QuantizedExactStore

    num_categories = SMOKE_STREAM_CATEGORIES if smoke else STREAM_CATEGORIES
    batch_size = SMOKE_STREAM_BATCH if smoke else STREAM_BATCH
    repeats = 2 if smoke else STREAM_REPEATS
    serving_allocator = configure_serving_allocator()

    # ru_maxrss is a lifetime high-water mark: build the FP64 model
    # first and the store second, so each increment isolates one of the
    # two parameter sets.
    rss_start = rss_kb()
    rng = np.random.default_rng(7)
    classifier, screener = build_models(num_categories, rng)
    rss_after_fp64 = rss_kb()
    store = QuantizedExactStore.from_classifier(classifier, kind="int8")
    rss_after_store = rss_kb()
    fp16_store = QuantizedExactStore.from_classifier(classifier, kind="float16")

    fp64_bytes = classifier.weight.nbytes + classifier.bias.nbytes
    resident = {
        "fp64_exact_bytes": fp64_bytes,
        "int8_exact_bytes": store.nbytes,
        "float16_exact_bytes": fp16_store.nbytes,
        "reduction_int8": round(fp64_bytes / store.nbytes, 2),
        "reduction_float16": round(fp64_bytes / fp16_store.nbytes, 2),
    }
    rss_record = {
        "fp64_model_increment_kb": rss_after_fp64 - rss_start,
        "quantized_store_increment_kb": rss_after_store - rss_after_fp64,
        "note": "high-water deltas: the FP64 model (classifier + "
        "screener) lands first, the INT8 store's codes/scales on top "
        "of it; a quantized-only server never pays the first delta",
    }
    del fp16_store

    calibration = rng.standard_normal((64, HIDDEN_DIM))
    features = rng.standard_normal((batch_size, HIDDEN_DIM))
    results = []
    for selector_mode in SELECTORS:
        selector = CandidateSelector(
            mode=selector_mode, num_candidates=NUM_CANDIDATES
        )
        if selector_mode == "threshold":
            selector.calibrate(screener.approximate_logits(calibration))
        fp64_engine = ApproximateScreeningClassifier(
            classifier, screener, selector
        )
        quant_engine = ApproximateScreeningClassifier(
            store, screener, selector
        )
        fp64_ms = time_ms(
            lambda: fp64_engine.forward_streaming(features), repeats, warmup=1
        )
        quant_ms = time_ms(
            lambda: quant_engine.forward_streaming(features), repeats, warmup=1
        )
        fp64_peak = traced_peak_bytes(
            lambda: fp64_engine.forward_streaming(features)
        )
        quant_peak = traced_peak_bytes(
            lambda: quant_engine.forward_streaming(features)
        )
        agreement = float(
            np.mean(
                fp64_engine.forward_streaming(features).predict()
                == quant_engine.forward_streaming(features).predict()
            )
        )
        entry = {
            "num_categories": num_categories,
            "hidden_dim": HIDDEN_DIM,
            "projection_dim": PROJECTION_DIM,
            "num_candidates": NUM_CANDIDATES,
            "selector": selector_mode,
            "batch": batch_size,
            "timings_ms": {
                "streaming_fp64": round(fp64_ms, 3),
                "streaming_int8": round(quant_ms, 3),
            },
            "peak_incremental_bytes": {
                "streaming_fp64": fp64_peak,
                "streaming_int8": quant_peak,
            },
            "predict_agreement": agreement,
        }
        results.append(entry)
        print(
            f"l={num_categories} {selector_mode:>9} b={batch_size:<3} "
            f"fp64={fp64_ms:9.2f}ms int8={quant_ms:9.2f}ms  "
            f"peak {fp64_peak / 1e6:7.1f}MB -> {quant_peak / 1e6:7.1f}MB  "
            f"agree={agreement:.3f}",
            flush=True,
        )

    print(
        f"exact weights: fp64 {fp64_bytes / 1e6:.1f}MB -> "
        f"int8 {store.nbytes / 1e6:.1f}MB "
        f"({resident['reduction_int8']}x less resident)",
        flush=True,
    )
    return {
        "benchmark": "block-quantized exact-weight store vs FP64 residency",
        "machine": machine_metadata(),
        "repeats": repeats,
        "allocator": (
            "configure_serving_allocator"
            if serving_allocator
            else "glibc default (tuning unavailable on this platform)"
        ),
        "store": {"kind": "int8", "tile_rows": store.tile_rows,
                  "num_tiles": store.num_tiles},
        "resident_bytes": resident,
        "ru_maxrss": rss_record,
        "headline": {
            "num_categories": num_categories,
            "batch": batch_size,
            "exact_weight_reduction_int8": resident["reduction_int8"],
            "predict_agreement_min": min(
                r["predict_agreement"] for r in results
            ),
        },
        "results": results,
    }


# ----------------------------------------------------------------------
# trace mode: the cost of watching, plus an exportable serving trace
# ----------------------------------------------------------------------
#: Trace-mode scale: big enough for several canonical column tiles
#: (8192 categories each), small enough to run in seconds.
TRACE_CATEGORIES = 33_000
TRACE_BATCH = 64


def run_trace(smoke: bool = False, trace_path: str = "BENCH_trace.json") -> dict:
    """Observability overhead on the streaming hot path + trace export.

    Three timings of the identical call: recorder off (the shipped
    default), metrics recording on, metrics + span tracing on.  Then
    one clean instrumented request is exported as Chrome trace-event
    JSON and schema-validated before being written.
    """
    num_categories = SMOKE_STREAM_CATEGORIES if smoke else TRACE_CATEGORIES
    batch_size = SMOKE_STREAM_BATCH if smoke else TRACE_BATCH
    repeats = 2 if smoke else REPEATS
    configure_serving_allocator()

    rng = np.random.default_rng(7)
    classifier, screener = build_models(num_categories, rng)
    selector = CandidateSelector(mode="top_m", num_candidates=NUM_CANDIDATES)
    engine = ApproximateScreeningClassifier(classifier, screener, selector)
    features = rng.standard_normal((batch_size, HIDDEN_DIM))

    def streaming():
        return engine.forward_streaming(features)

    engine.set_recorder(NULL_RECORDER)
    off_ms = time_ms(streaming, repeats, WARMUP)
    metrics_recorder = Recorder()
    engine.set_recorder(metrics_recorder)
    metrics_ms = time_ms(streaming, repeats, WARMUP)
    traced_recorder = Recorder(trace=True)
    engine.set_recorder(traced_recorder)
    traced_ms = time_ms(streaming, repeats, WARMUP)

    # One clean request for the exported trace (the timing loops above
    # left their spans behind; the artifact should be one request).
    traced_recorder.tracer.clear()
    streaming()
    events = validate_chrome_events(traced_recorder.tracer.chrome_events())
    assert traced_recorder.tracer.open_spans() == 0
    with open(trace_path, "w") as handle:
        json.dump(events, handle)
        handle.write("\n")
    engine.set_recorder(NULL_RECORDER)

    def overhead_pct(on_ms: float) -> float:
        return round((on_ms / off_ms - 1.0) * 100.0, 2)

    telemetry = {
        "benchmark": "observability overhead on the streaming forward",
        "machine": machine_metadata(),
        "config": {
            "num_categories": num_categories,
            "hidden_dim": HIDDEN_DIM,
            "projection_dim": PROJECTION_DIM,
            "num_candidates": NUM_CANDIDATES,
            "batch": batch_size,
            "repeats": repeats,
        },
        "timings_ms": {
            "observability_off": round(off_ms, 3),
            "metrics_on": round(metrics_ms, 3),
            "metrics_and_trace_on": round(traced_ms, 3),
        },
        "overhead_pct": {
            "metrics_on": overhead_pct(metrics_ms),
            "metrics_and_trace_on": overhead_pct(traced_ms),
        },
        "trace": {
            "path": trace_path,
            "events": len(events),
            "span_names": sorted({str(event["name"]) for event in events}),
        },
        "metrics_snapshot": traced_recorder.snapshot(),
    }
    print(
        f"l={num_categories} b={batch_size} streaming: "
        f"off={off_ms:8.2f}ms metrics={metrics_ms:8.2f}ms "
        f"(+{telemetry['overhead_pct']['metrics_on']}%) "
        f"trace={traced_ms:8.2f}ms "
        f"(+{telemetry['overhead_pct']['metrics_and_trace_on']}%)  "
        f"{len(events)} events -> {trace_path}",
        flush=True,
    )
    return telemetry


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", nargs="?", default=None)
    parser.add_argument(
        "--streaming",
        action="store_true",
        help="benchmark the blocked streaming forward instead of the "
        "seed-vs-vectorized comparison",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="measure observability overhead, merge a telemetry block "
        "into the pipeline report and export a Chrome trace",
    )
    parser.add_argument(
        "--quantized-exact",
        action="store_true",
        help="measure the block-quantized exact-weight store against "
        "FP64 residency and merge a 'quantized_exact' block into the "
        "streaming report",
    )
    parser.add_argument(
        "--trace-output",
        default="BENCH_trace.json",
        help="where --trace writes the Chrome trace-event JSON",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny configuration for CI (seconds, not minutes)",
    )
    args = parser.parse_args()
    if args.trace:
        output_path = args.output or "BENCH_pipeline.json"
        # Read-modify-write: the telemetry block joins the existing
        # timing report rather than replacing it.
        try:
            with open(output_path) as handle:
                report = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            report = {"benchmark": "screening pipeline hot path"}
        report["telemetry"] = run_trace(
            smoke=args.smoke, trace_path=args.trace_output
        )
        with open(output_path, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        overhead = report["telemetry"]["overhead_pct"]
        print(
            f"\ntelemetry: metrics +{overhead['metrics_on']}%, "
            f"metrics+trace +{overhead['metrics_and_trace_on']}% over the "
            f"no-op recorder -> {output_path} (trace: {args.trace_output})"
        )
        return 0
    if args.quantized_exact:
        output_path = args.output or "BENCH_streaming.json"
        # Read-modify-write: the quantized block joins the existing
        # streaming report rather than replacing it (same contract as
        # --trace with the pipeline report).
        try:
            with open(output_path) as handle:
                report = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            report = {"benchmark": "blocked streaming forward vs dense engine"}
        report["quantized_exact"] = run_quantized(smoke=args.smoke)
        with open(output_path, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        headline = report["quantized_exact"]["headline"]
        print(
            f"\nquantized exact store: l={headline['num_categories']} "
            f"batch={headline['batch']}: int8 exact weights are "
            f"{headline['exact_weight_reduction_int8']}x smaller resident "
            f"than FP64, streamed predict agreement >= "
            f"{headline['predict_agreement_min']} -> {output_path}"
        )
        return 0
    if args.streaming:
        output_path = args.output or "BENCH_streaming.json"
        report = run_streaming(smoke=args.smoke)
        summary = report["headline"]
        closing = (
            f"\nheadline: l={summary['num_categories']} "
            f"batch={summary['batch']} {summary['selector']}: streaming is "
            f"{summary['speedup_streaming_vs_default']}x dense wall-clock at "
            f"{summary['peak_memory_reduction']}x lower peak memory "
            f"-> {output_path}"
        )
    else:
        output_path = args.output or "BENCH_pipeline.json"
        report = run(smoke=args.smoke)
        summary = report["headline"]
        closing = (
            f"\nheadline: l={summary['num_categories']} batch={summary['batch']} "
            f"{summary['selector']}: default forward is "
            f"{summary['speedup_default_vs_seed']}x the seed loop "
            f"-> {output_path}"
        )
    with open(output_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(closing)
    return 0


if __name__ == "__main__":
    sys.exit(main())
