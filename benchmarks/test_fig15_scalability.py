"""Fig. 15 — end-to-end scalability benchmark."""

from repro.experiments import fig15_scalability


def test_fig15_scalability(once):
    rows = once(fig15_scalability.run)
    print()
    print(fig15_scalability.report())

    # ENMC's advantage over TensorDIMM grows with category count
    # (paper: 2.2× at the small end → 7.1× at the large end).
    ratios = [row.seconds["TensorDIMM"] / row.seconds["ENMC"] for row in rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] / ratios[0] > 2.0

    # TensorDIMM-Large tracks TensorDIMM (both memory-bound on full
    # weights); ENMC beats both at every point.
    for row in rows:
        assert row.seconds["ENMC"] < row.seconds["TensorDIMM"]
        assert row.seconds["ENMC"] < row.seconds["TensorDIMM-Large"]

    # End-to-end speedup over CPU grows with scale.
    speedups = [row.speedup("ENMC") for row in rows]
    assert speedups == sorted(speedups)
